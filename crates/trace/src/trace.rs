//! In-memory trace container.

use crate::record::BranchRecord;
use crate::stats::TraceStats;
use crate::stream::TraceStream;
use std::fmt;

/// An in-memory branch trace: a named, ordered sequence of
/// [`BranchRecord`]s.
///
/// Traces are the unit of simulation: one trace corresponds to one
/// benchmark of the paper's 80-benchmark evaluation.
///
/// ```
/// use bp_trace::{BranchRecord, Trace};
/// let trace: Trace = std::iter::repeat(BranchRecord::conditional(0x10, 0x8, true))
///     .take(3)
///     .collect();
/// assert_eq!(trace.len(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    name: String,
    records: Vec<BranchRecord>,
    // Running sum of `BranchRecord::instructions`, maintained by `push`
    // so `instruction_count` is O(1) on the generation hot path.
    instructions: u64,
}

impl Trace {
    /// Creates an empty trace with the given benchmark name.
    pub fn new(name: impl Into<String>) -> Self {
        Trace {
            name: name.into(),
            records: Vec::new(),
            instructions: 0,
        }
    }

    /// Creates an empty trace with capacity for `n` records.
    pub fn with_capacity(name: impl Into<String>, n: usize) -> Self {
        Trace {
            name: name.into(),
            records: Vec::with_capacity(n),
            instructions: 0,
        }
    }

    /// The benchmark name (e.g. `"SPEC2K6-12"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the trace.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Appends one record.
    #[inline]
    pub fn push(&mut self, record: BranchRecord) {
        self.instructions += record.instructions();
        self.records.push(record);
    }

    /// Number of branch records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Borrow the records as a slice.
    pub fn records(&self) -> &[BranchRecord] {
        &self.records
    }

    /// Iterates over the records.
    pub fn iter(&self) -> TraceIter<'_> {
        TraceIter {
            inner: self.records.iter(),
        }
    }

    /// Opens a streaming cursor over the records (see
    /// [`BranchStream`](crate::BranchStream)).
    pub fn stream(&self) -> TraceStream<'_> {
        TraceStream::new(&self.name, &self.records)
    }

    /// Total retired instructions represented by the trace (branches plus
    /// leading non-branch instructions). O(1): the sum is maintained
    /// incrementally by [`Trace::push`].
    pub fn instruction_count(&self) -> u64 {
        self.instructions
    }

    /// Number of conditional branch records (the denominator of
    /// per-branch misprediction rates).
    pub fn conditional_count(&self) -> u64 {
        self.records.iter().filter(|r| r.is_conditional()).count() as u64
    }

    /// Computes summary statistics over the whole trace.
    pub fn stats(&self) -> TraceStats {
        TraceStats::from_records(&self.name, &self.records)
    }

    /// Consumes the trace and returns the underlying record vector.
    pub fn into_records(self) -> Vec<BranchRecord> {
        self.records
    }
}

impl Extend<BranchRecord> for Trace {
    fn extend<T: IntoIterator<Item = BranchRecord>>(&mut self, iter: T) {
        for record in iter {
            self.push(record);
        }
    }
}

impl FromIterator<BranchRecord> for Trace {
    fn from_iter<T: IntoIterator<Item = BranchRecord>>(iter: T) -> Self {
        let mut trace = Trace::new(String::new());
        trace.extend(iter);
        trace
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a BranchRecord;
    type IntoIter = TraceIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace {} ({} branches, {} instructions)",
            if self.name.is_empty() {
                "<unnamed>"
            } else {
                &self.name
            },
            self.len(),
            self.instruction_count()
        )
    }
}

/// Iterator over the records of a [`Trace`], created by [`Trace::iter`].
#[derive(Debug, Clone)]
pub struct TraceIter<'a> {
    inner: std::slice::Iter<'a, BranchRecord>,
}

impl<'a> Iterator for TraceIter<'a> {
    type Item = &'a BranchRecord;

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for TraceIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::BranchKind;

    fn sample() -> Trace {
        let mut t = Trace::new("sample");
        t.push(BranchRecord::conditional(0x100, 0x80, true).with_leading_instructions(3));
        t.push(BranchRecord::conditional(0x100, 0x80, false).with_leading_instructions(3));
        t.push(BranchRecord::call(0x200, 0x1000).with_leading_instructions(1));
        t
    }

    #[test]
    fn counting() {
        let t = sample();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.conditional_count(), 2);
        assert_eq!(t.instruction_count(), 3 + (3 + 3 + 1));
    }

    #[test]
    fn iteration_matches_records() {
        let t = sample();
        let via_iter: Vec<_> = t.iter().copied().collect();
        assert_eq!(via_iter.as_slice(), t.records());
        assert_eq!(t.iter().len(), 3);
    }

    #[test]
    fn collect_and_extend() {
        let mut t: Trace = sample().into_records().into_iter().collect();
        assert_eq!(t.len(), 3);
        t.extend(sample().into_records());
        assert_eq!(t.len(), 6);
        t.set_name("renamed");
        assert_eq!(t.name(), "renamed");
    }

    #[test]
    fn display_mentions_name_and_counts() {
        let t = sample();
        let s = format!("{t}");
        assert!(s.contains("sample"));
        assert!(s.contains("3 branches"));
        let empty = Trace::default();
        assert!(format!("{empty}").contains("<unnamed>"));
    }

    #[test]
    fn stats_round_trip_kind() {
        let t = sample();
        let stats = t.stats();
        assert_eq!(stats.kind_counts.get(BranchKind::Call), 1);
        assert_eq!(stats.kind_counts.get(BranchKind::Conditional), 2);
    }
}
