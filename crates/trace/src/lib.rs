//! Branch trace model for the IMLI reproduction.
//!
//! This crate defines the input format consumed by every predictor in the
//! workspace: a stream of [`BranchRecord`]s, each describing one dynamic
//! branch instance together with the number of non-branch instructions that
//! retired since the previous branch. The format is deliberately close to
//! the record layout used by the Championship Branch Prediction (CBP)
//! frameworks, which the paper's evaluation is based on: the predictor
//! observes the program counter, the branch kind, the taken/not-taken
//! outcome, and the target.
//!
//! # Streaming versus materialized traces
//!
//! The simulator consumes the [`BranchStream`] trait — a named source of
//! records pulled one at a time — rather than `Vec<BranchRecord>`, so
//! benchmarks of any length simulate in O(1) memory. Three producers
//! implement it:
//!
//! * [`Trace::stream`] — a cursor over an in-memory [`Trace`] (the
//!   materialized representation, still the right tool for analyses
//!   that need random access or multiple passes);
//! * [`TraceReader`] — a streaming reader over serialized trace files
//!   (the [`write_trace`] format), which never loads the whole file;
//! * `bp_workloads::stream_benchmark` — lazy synthetic-benchmark
//!   generation (in the workloads crate).
//!
//! Streams are single-pass; every producer in the workspace is
//! deterministic, so constructing a fresh stream replays the identical
//! record sequence. [`BranchStream::collect_trace`] materializes any
//! stream back into a [`Trace`].
//!
//! # Example
//!
//! ```
//! use bp_trace::{BranchKind, BranchRecord, Trace};
//!
//! let mut trace = Trace::new("tiny");
//! // A two-iteration loop: backward conditional taken once, then fall out.
//! trace.push(BranchRecord::conditional(0x400, 0x3f0, true).with_leading_instructions(4));
//! trace.push(BranchRecord::conditional(0x400, 0x3f0, false).with_leading_instructions(4));
//! assert_eq!(trace.len(), 2);
//! assert_eq!(trace.instruction_count(), 2 + 8);
//! assert!(trace.iter().all(|r| r.is_backward()));
//! ```

#![warn(missing_docs)]

mod io;
mod io_v2;
mod record;
mod stats;
mod stream;
mod trace;

pub use io::{read_trace, write_trace, TraceIoError, TraceReader};
pub use io_v2::{write_trace_v2, BlockWriter};
pub use record::{BranchKind, BranchRecord};
pub use stats::{KindCounts, TraceStats};
pub use stream::{BranchStream, Records, TraceStream};
pub use trace::{Trace, TraceIter};
