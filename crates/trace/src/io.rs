//! Compact binary (de)serialization of traces.
//!
//! Two format versions share the `"BPTR"` magic and header layout, and
//! [`TraceReader`]/[`read_trace`] dispatch on the header's version
//! field transparently:
//!
//! * **v1** (this module, [`write_trace`]) — fixed 22-byte records
//!   written field-by-field:
//!
//!   ```text
//!   magic  "BPTR"            4 bytes
//!   version u32              1
//!   name_len u32, name bytes
//!   record_count u64
//!   records: pc u64 | target u64 | kind u8 | taken u8 | leading u32
//!   ```
//!
//! * **v2** ([`crate::write_trace_v2`] / [`crate::BlockWriter`]) —
//!   block-framed, delta-encoded records with one large I/O per block;
//!   see `io_v2.rs` for the layout. New files should be written
//!   in v2; v1 writing is kept so old fixtures and tools keep working.

use crate::io_v2::V2Body;
use crate::record::{BranchKind, BranchRecord};
use crate::stream::BranchStream;
use crate::trace::Trace;
use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

pub(crate) const MAGIC: &[u8; 4] = b"BPTR";
const VERSION: u32 = 1;
/// Sanity cap on the header's name length: a corrupt stream must hit
/// the error path, not a multi-gigabyte allocation.
const MAX_NAME_LEN: u32 = 1 << 20;

/// Errors produced while reading or writing a serialized trace.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream did not start with the expected magic bytes.
    BadMagic([u8; 4]),
    /// The stream uses an unsupported format version.
    UnsupportedVersion(u32),
    /// The trace name is not valid UTF-8.
    BadName,
    /// The header declares an implausibly long trace name (corrupt
    /// stream guard: the length would otherwise be allocated blindly).
    NameTooLong(u32),
    /// A record used an unknown [`BranchKind`] code.
    BadKind(u8),
    /// A record's taken flag was neither 0 nor 1 (v1 records).
    BadTakenFlag(u8),
    /// A v2 record's flags byte has reserved bits set.
    BadFlags(u8),
    /// A v2 varint was longer than the field it encodes.
    BadVarint,
    /// A v2 block declared more payload than the sanity cap allows
    /// (corrupt-frame guard: the length would otherwise be allocated
    /// blindly).
    BlockTooLarge(u32),
    /// Decoding a v2 block ran past its declared payload length.
    BlockOverrun,
    /// A v2 block had payload bytes left after its declared record
    /// count was decoded.
    BlockTrailingBytes(usize),
    /// A v2 terminator frame carried the wrong payload length.
    BadTerminator(u32),
    /// The record count declared in a v2 header or terminator disagrees
    /// with the records actually present.
    CountMismatch {
        /// What the header or terminator claimed.
        declared: u64,
        /// What was actually counted.
        actual: u64,
    },
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "i/o failure: {e}"),
            TraceIoError::BadMagic(m) => write!(f, "bad trace magic {m:?}"),
            TraceIoError::UnsupportedVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceIoError::BadName => write!(f, "trace name is not valid utf-8"),
            TraceIoError::NameTooLong(n) => {
                write!(
                    f,
                    "trace name length {n} exceeds the {MAX_NAME_LEN}-byte cap"
                )
            }
            TraceIoError::BadKind(c) => write!(f, "unknown branch kind code {c}"),
            TraceIoError::BadTakenFlag(c) => write!(f, "invalid taken flag {c}"),
            TraceIoError::BadFlags(b) => {
                write!(f, "record flags {b:#04x} have reserved bits set")
            }
            TraceIoError::BadVarint => write!(f, "varint wider than its field"),
            TraceIoError::BlockTooLarge(n) => {
                write!(f, "block payload length {n} exceeds the sanity cap")
            }
            TraceIoError::BlockOverrun => {
                write!(f, "record decoding ran past the block's payload")
            }
            TraceIoError::BlockTrailingBytes(n) => {
                write!(f, "{n} trailing bytes after the block's declared records")
            }
            TraceIoError::BadTerminator(n) => {
                write!(f, "terminator frame payload length {n}, expected 8")
            }
            TraceIoError::CountMismatch { declared, actual } => {
                write!(f, "declared record count {declared}, found {actual}")
            }
        }
    }
}

impl Error for TraceIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Serializes `trace` to `writer` in format **v1** (fixed-width
/// records).
///
/// Kept for compatibility with existing fixtures and tools; new files
/// should prefer [`crate::write_trace_v2`], which is a fraction of the
/// size and reads faster. A `&mut` reference can be passed as the
/// writer.
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] if the underlying writer fails.
pub fn write_trace<W: Write>(mut writer: W, trace: &Trace) -> Result<(), TraceIoError> {
    writer.write_all(MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    let name = trace.name().as_bytes();
    writer.write_all(&(name.len() as u32).to_le_bytes())?;
    writer.write_all(name)?;
    writer.write_all(&(trace.len() as u64).to_le_bytes())?;
    for r in trace.iter() {
        writer.write_all(&r.pc.to_le_bytes())?;
        writer.write_all(&r.target.to_le_bytes())?;
        writer.write_all(&[r.kind.code(), u8::from(r.taken)])?;
        writer.write_all(&r.leading_instructions.to_le_bytes())?;
    }
    // Flush here rather than relying on a buffered writer's Drop, which
    // swallows I/O errors — a full disk must fail the write, not
    // silently truncate the file. (v2 does the same in finish().)
    writer.flush()?;
    Ok(())
}

/// Deserializes a trace previously written by [`write_trace`],
/// materializing every record in memory.
///
/// A `&mut` reference can be passed as the reader. For simulation over
/// large files, prefer [`TraceReader`], which yields records one at a
/// time in O(1) memory; this function is a thin collect wrapper over it.
///
/// # Errors
///
/// Returns a [`TraceIoError`] if the stream is truncated, corrupt, or uses
/// an unsupported version.
pub fn read_trace<R: Read>(reader: R) -> Result<Trace, TraceIoError> {
    let mut stream = TraceReader::new(reader)?;
    let mut trace = Trace::with_capacity(stream.name().to_owned(), stream.remaining().min(1 << 24));
    while let Some(record) = stream.try_next()? {
        trace.push(record);
    }
    Ok(trace)
}

/// Streaming reader over a serialized trace: parses the header eagerly,
/// dispatches on the header's format version (v1 fixed-width or v2
/// block-framed — every v1 file keeps working), then yields records one
/// at a time, so a multi-gigabyte trace file simulates in O(1) memory.
///
/// `TraceReader` implements [`BranchStream`] and can therefore be fed
/// straight to the simulator. Because [`BranchStream::next_record`]
/// cannot surface I/O failures, a mid-stream error *ends* the stream
/// and is stashed where [`TraceReader::error`] (or the fallible
/// [`TraceReader::try_next`]) can observe it; callers that must
/// distinguish truncation from clean end-of-trace check `error()` after
/// draining.
///
/// ```
/// use bp_trace::{write_trace, BranchRecord, BranchStream, Trace, TraceReader};
///
/// let mut trace = Trace::new("on-disk");
/// trace.push(BranchRecord::conditional(0x40, 0x20, true));
/// let mut buf = Vec::new();
/// write_trace(&mut buf, &trace).unwrap();
///
/// let mut reader = TraceReader::new(buf.as_slice()).unwrap();
/// assert_eq!(reader.name(), "on-disk");
/// assert_eq!(reader.version(), 1);
/// assert_eq!(reader.remaining(), 1);
/// let first = reader.next_record().unwrap();
/// assert_eq!(first.pc, 0x40);
/// assert!(reader.next_record().is_none());
/// assert!(reader.error().is_none());
/// ```
#[derive(Debug)]
pub struct TraceReader<R> {
    name: String,
    version: u32,
    error: Option<TraceIoError>,
    inner: Inner<R>,
}

#[derive(Debug)]
enum Inner<R> {
    V1 { reader: R, remaining: u64 },
    V2(V2Body<R>),
}

impl<R: Read> TraceReader<R> {
    /// Opens a serialized trace, parsing and validating the header.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceIoError`] if the header is truncated, carries the
    /// wrong magic, an unsupported version, or a non-UTF-8 name.
    pub fn new(mut reader: R) -> Result<Self, TraceIoError> {
        let mut magic = [0u8; 4];
        reader.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(TraceIoError::BadMagic(magic));
        }
        let version = read_u32(&mut reader)?;
        if version != VERSION && version != crate::io_v2::VERSION_2 {
            return Err(TraceIoError::UnsupportedVersion(version));
        }
        let name_len = read_u32(&mut reader)?;
        if name_len > MAX_NAME_LEN {
            return Err(TraceIoError::NameTooLong(name_len));
        }
        let name_len = name_len as usize;
        let mut name_bytes = vec![0u8; name_len];
        reader.read_exact(&mut name_bytes)?;
        let name = String::from_utf8(name_bytes).map_err(|_| TraceIoError::BadName)?;
        let count = read_u64(&mut reader)?;
        let inner = if version == VERSION {
            Inner::V1 {
                reader,
                remaining: count,
            }
        } else {
            Inner::V2(V2Body::new(reader, count))
        };
        Ok(TraceReader {
            name,
            version,
            error: None,
            inner,
        })
    }

    /// The header's format version (1 or 2).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Records still to be read. Exact for v1 files and v2 files whose
    /// writer declared a count up front; for streamed v2 files (unknown
    /// count) this is the records left in the current block — a lower
    /// bound.
    pub fn remaining(&self) -> usize {
        match &self.inner {
            Inner::V1 { remaining, .. } => *remaining as usize,
            Inner::V2(body) => body.remaining(),
        }
    }

    /// The mid-stream error that ended the stream early, if any.
    pub fn error(&self) -> Option<&TraceIoError> {
        self.error.as_ref()
    }

    /// Reads the next record, surfacing I/O and format errors.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceIoError`] if the stream is truncated or a record
    /// is corrupt; the stream yields nothing further afterwards.
    pub fn try_next(&mut self) -> Result<Option<BranchRecord>, TraceIoError> {
        match &mut self.inner {
            Inner::V1 { reader, remaining } => {
                if *remaining == 0 {
                    return Ok(None);
                }
                match read_record_v1(reader) {
                    Ok(record) => {
                        *remaining -= 1;
                        Ok(Some(record))
                    }
                    Err(e) => {
                        *remaining = 0;
                        Err(e)
                    }
                }
            }
            Inner::V2(body) => body.try_next(),
        }
    }
}

fn read_record_v1<R: Read>(reader: &mut R) -> Result<BranchRecord, TraceIoError> {
    let pc = read_u64(reader)?;
    let target = read_u64(reader)?;
    let mut flags = [0u8; 2];
    reader.read_exact(&mut flags)?;
    let kind = BranchKind::from_code(flags[0]).ok_or(TraceIoError::BadKind(flags[0]))?;
    let taken = match flags[1] {
        0 => false,
        1 => true,
        other => return Err(TraceIoError::BadTakenFlag(other)),
    };
    let leading = read_u32(reader)?;
    Ok(BranchRecord {
        pc,
        target,
        kind,
        taken,
        leading_instructions: leading,
    })
}

impl<R: Read> BranchStream for TraceReader<R> {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_record(&mut self) -> Option<BranchRecord> {
        // Cursor-hit fast path for v2 bodies: skips the Result plumbing
        // on the per-record hot loop the simulator drives.
        if let Inner::V2(body) = &mut self.inner {
            if let Some(record) = body.next_cached() {
                return Some(record);
            }
        }
        match self.try_next() {
            Ok(record) => record,
            Err(e) => {
                self.error = Some(e);
                None
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Declared counts are claims, not guarantees (the file may be
        // truncated), so they only bound from above; streamed v2 files
        // with no declared count are unbounded.
        match &self.inner {
            Inner::V1 { remaining, .. } => (0, Some(*remaining as usize)),
            Inner::V2(body) => (0, body.declared().map(|d| d as usize)),
        }
    }
}

fn read_u32<R: Read>(reader: &mut R) -> Result<u32, TraceIoError> {
    let mut buf = [0u8; 4];
    reader.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(reader: &mut R) -> Result<u64, TraceIoError> {
    let mut buf = [0u8; 8];
    reader.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new("io-sample");
        t.push(
            BranchRecord::conditional(0xdead_beef, 0xdead_be00, true).with_leading_instructions(7),
        );
        t.push(BranchRecord::ret(0x1000, 0x2000));
        t.push(BranchRecord::indirect(0x44, 0x9988).with_leading_instructions(2));
        t
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.name(), "io-sample");
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = Trace::new("");
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_trace(&b"XXXX\x01\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::BadMagic(_)));
        assert!(!format!("{err}").is_empty());
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &Trace::new("x")).unwrap();
        buf[4] = 99;
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::UnsupportedVersion(99)));
    }

    #[test]
    fn corrupt_kind_is_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample()).unwrap();
        // Kind byte of the first record sits right after header + count.
        let kind_offset = 4 + 4 + 4 + "io-sample".len() + 8 + 16;
        buf[kind_offset] = 200;
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::BadKind(200)));
    }

    #[test]
    fn corrupt_taken_flag_is_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample()).unwrap();
        let taken_offset = 4 + 4 + 4 + "io-sample".len() + 8 + 17;
        buf[taken_offset] = 7;
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::BadTakenFlag(7)));
    }

    #[test]
    fn truncated_stream_reports_io_error() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample()).unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::Io(_)));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn absurd_name_length_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"BPTR");
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::NameTooLong(u32::MAX)));
        assert!(format!("{err}").contains("cap"));
    }

    #[test]
    fn streaming_reader_matches_materializing_reader() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let reader = TraceReader::new(buf.as_slice()).unwrap();
        assert_eq!(reader.remaining(), t.len());
        let streamed = reader.collect_trace();
        assert_eq!(streamed, t);
    }

    #[test]
    fn streaming_reader_stashes_truncation_error() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample()).unwrap();
        buf.truncate(buf.len() - 3);
        let mut reader = TraceReader::new(buf.as_slice()).unwrap();
        let mut read = 0;
        while reader.next_record().is_some() {
            read += 1;
        }
        assert_eq!(read, 2, "last record is cut off");
        assert!(matches!(reader.error(), Some(TraceIoError::Io(_))));
        // try_next after the failure reports a clean end.
        assert!(matches!(reader.try_next(), Ok(None)));
    }

    #[test]
    fn streaming_reader_size_hint_is_upper_bound_only() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample()).unwrap();
        let reader = TraceReader::new(buf.as_slice()).unwrap();
        assert_eq!(BranchStream::size_hint(&reader), (0, Some(3)));
    }
}
