//! Trace summary statistics.

use crate::record::{BranchKind, BranchRecord};
use std::collections::HashSet;
use std::fmt;

/// Per-[`BranchKind`] record counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindCounts {
    counts: [u64; 5],
}

impl KindCounts {
    /// Increments the count for `kind`.
    #[inline]
    pub fn bump(&mut self, kind: BranchKind) {
        self.counts[kind.code() as usize] += 1;
    }

    /// Returns the count for `kind`.
    #[inline]
    pub fn get(&self, kind: BranchKind) -> u64 {
        self.counts[kind.code() as usize]
    }

    /// Total records across all kinds.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

impl fmt::Display for KindCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for kind in BranchKind::ALL {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{}={}", kind, self.get(kind))?;
        }
        Ok(())
    }
}

/// Summary statistics for a trace: sizes, mix, takenness, and static
/// footprint. Used by the workload generators to sanity-check that the
/// synthetic benchmarks have realistic branch behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Benchmark name the statistics were computed from.
    pub name: String,
    /// Dynamic record count per kind.
    pub kind_counts: KindCounts,
    /// Total retired instructions (branches + leading instructions).
    pub instructions: u64,
    /// Number of taken conditional branches.
    pub conditional_taken: u64,
    /// Number of backward conditional branches (loop-closing candidates).
    pub conditional_backward: u64,
    /// Number of distinct static conditional branch PCs.
    pub static_conditionals: u64,
}

impl TraceStats {
    /// Computes statistics over a record slice.
    pub fn from_records(name: &str, records: &[BranchRecord]) -> Self {
        let mut kind_counts = KindCounts::default();
        let mut instructions = 0u64;
        let mut conditional_taken = 0u64;
        let mut conditional_backward = 0u64;
        let mut statics: HashSet<u64> = HashSet::new();
        for r in records {
            kind_counts.bump(r.kind);
            instructions += r.instructions();
            if r.is_conditional() {
                statics.insert(r.pc);
                if r.taken {
                    conditional_taken += 1;
                }
                if r.is_backward() {
                    conditional_backward += 1;
                }
            }
        }
        TraceStats {
            name: name.to_owned(),
            kind_counts,
            instructions,
            conditional_taken,
            conditional_backward,
            static_conditionals: statics.len() as u64,
        }
    }

    /// Dynamic conditional branch count.
    pub fn conditionals(&self) -> u64 {
        self.kind_counts.get(BranchKind::Conditional)
    }

    /// Fraction of conditional branches that were taken, or `None` for a
    /// trace without conditionals.
    pub fn taken_rate(&self) -> Option<f64> {
        let n = self.conditionals();
        (n != 0).then(|| self.conditional_taken as f64 / n as f64)
    }

    /// Conditional branches per retired instruction, or `None` for an
    /// empty trace.
    pub fn branch_density(&self) -> Option<f64> {
        (self.instructions != 0).then(|| self.conditionals() as f64 / self.instructions as f64)
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} insn, kinds [{}], {} static cond, taken {:.1}%",
            self.name,
            self.instructions,
            self.kind_counts,
            self.static_conditionals,
            self.taken_rate().unwrap_or(0.0) * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = TraceStats::from_records("empty", &[]);
        assert_eq!(s.instructions, 0);
        assert_eq!(s.taken_rate(), None);
        assert_eq!(s.branch_density(), None);
        assert_eq!(s.kind_counts.total(), 0);
    }

    #[test]
    fn mixed_stats() {
        let records = vec![
            BranchRecord::conditional(0x10, 0x8, true).with_leading_instructions(4),
            BranchRecord::conditional(0x10, 0x8, false).with_leading_instructions(4),
            BranchRecord::conditional(0x20, 0x40, true).with_leading_instructions(2),
            BranchRecord::unconditional(0x30, 0x10).with_leading_instructions(0),
        ];
        let s = TraceStats::from_records("m", &records);
        assert_eq!(s.conditionals(), 3);
        assert_eq!(s.conditional_taken, 2);
        assert_eq!(s.conditional_backward, 2);
        assert_eq!(s.static_conditionals, 2);
        assert_eq!(s.instructions, 4 + 4 + 4 + 2);
        let rate = s.taken_rate().unwrap();
        assert!((rate - 2.0 / 3.0).abs() < 1e-12);
        assert!(s.branch_density().unwrap() > 0.0);
        assert!(format!("{s}").contains("m:"));
    }

    #[test]
    fn kind_counts_display_lists_all_kinds() {
        let mut k = KindCounts::default();
        k.bump(BranchKind::Return);
        let s = format!("{k}");
        assert!(s.contains("ret=1"));
        assert!(s.contains("cond=0"));
        assert_eq!(k.total(), 1);
    }
}
