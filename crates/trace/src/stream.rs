//! Record-by-record trace streaming.
//!
//! [`BranchStream`] is the abstraction the simulator consumes: a named,
//! ordered source of [`BranchRecord`]s that is pulled one record at a
//! time, so producers (workload generators, on-disk trace readers) never
//! have to materialize a whole `Vec<BranchRecord>`. A fully in-memory
//! [`Trace`](crate::Trace) is just one implementation, via
//! [`Trace::stream`](crate::Trace::stream); the streaming reader over
//! serialized trace files is another (`TraceReader` in this crate).

use crate::record::BranchRecord;
use crate::trace::Trace;

/// A named, ordered source of branch records, consumed destructively
/// one record at a time.
///
/// Implementors produce the records of exactly one benchmark run, in
/// program order. Streams are *single-pass*: callers wanting to replay
/// a benchmark construct a fresh stream (all producers in this
/// workspace are deterministic, so a fresh stream replays bit-exactly).
///
/// ```
/// use bp_trace::{BranchRecord, BranchStream, Trace};
///
/// let mut trace = Trace::new("tiny");
/// trace.push(BranchRecord::conditional(0x400, 0x3f0, true));
/// trace.push(BranchRecord::conditional(0x400, 0x3f0, false));
///
/// let mut stream = trace.stream();
/// assert_eq!(stream.name(), "tiny");
/// let mut n = 0;
/// while let Some(record) = stream.next_record() {
///     assert_eq!(record.pc, 0x400);
///     n += 1;
/// }
/// assert_eq!(n, 2);
/// ```
pub trait BranchStream {
    /// The benchmark name this stream belongs to.
    fn name(&self) -> &str;

    /// Produces the next record, or `None` when the stream is
    /// exhausted.
    fn next_record(&mut self) -> Option<BranchRecord>;

    /// Bounds on the number of records still to come, mirroring
    /// [`Iterator::size_hint`].
    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, None)
    }

    /// Drains the stream into an in-memory [`Trace`] carrying the
    /// stream's name.
    fn collect_trace(mut self) -> Trace
    where
        Self: Sized,
    {
        let mut trace = Trace::with_capacity(self.name().to_owned(), self.size_hint().0);
        while let Some(record) = self.next_record() {
            trace.push(record);
        }
        trace
    }

    /// Adapts the stream into a plain [`Iterator`] over records.
    fn records(self) -> Records<Self>
    where
        Self: Sized,
    {
        Records { stream: self }
    }
}

// A stream behind a mutable reference is still a stream (lets callers
// pass `&mut s` without giving the stream away).
impl<S: BranchStream + ?Sized> BranchStream for &mut S {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn next_record(&mut self) -> Option<BranchRecord> {
        (**self).next_record()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (**self).size_hint()
    }
}

/// [`Iterator`] adapter over a [`BranchStream`], created by
/// [`BranchStream::records`].
#[derive(Debug)]
pub struct Records<S: BranchStream> {
    stream: S,
}

impl<S: BranchStream> Iterator for Records<S> {
    type Item = BranchRecord;

    fn next(&mut self) -> Option<BranchRecord> {
        self.stream.next_record()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.stream.size_hint()
    }
}

/// Streaming cursor over an in-memory [`Trace`], created by
/// [`Trace::stream`](crate::Trace::stream).
#[derive(Debug, Clone)]
pub struct TraceStream<'a> {
    name: &'a str,
    records: std::slice::Iter<'a, BranchRecord>,
}

impl<'a> TraceStream<'a> {
    pub(crate) fn new(name: &'a str, records: &'a [BranchRecord]) -> Self {
        TraceStream {
            name,
            records: records.iter(),
        }
    }
}

impl BranchStream for TraceStream<'_> {
    fn name(&self) -> &str {
        self.name
    }

    #[inline]
    fn next_record(&mut self) -> Option<BranchRecord> {
        self.records.next().copied()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.records.len();
        (n, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new("s");
        t.push(BranchRecord::conditional(0x10, 0x8, true).with_leading_instructions(3));
        t.push(BranchRecord::call(0x20, 0x400));
        t.push(BranchRecord::conditional(0x30, 0x8, false));
        t
    }

    #[test]
    fn trace_stream_replays_records_in_order() {
        let trace = sample();
        let streamed: Vec<BranchRecord> = trace.stream().records().collect();
        assert_eq!(streamed.as_slice(), trace.records());
    }

    #[test]
    fn collect_trace_round_trips() {
        let trace = sample();
        let back = trace.stream().collect_trace();
        assert_eq!(back, trace);
    }

    #[test]
    fn size_hint_tracks_consumption() {
        let trace = sample();
        let mut stream = trace.stream();
        assert_eq!(BranchStream::size_hint(&stream), (3, Some(3)));
        stream.next_record();
        assert_eq!(BranchStream::size_hint(&stream), (2, Some(2)));
    }

    #[test]
    fn mut_ref_is_a_stream() {
        let trace = sample();
        let mut stream = trace.stream();
        fn first_pc(mut s: impl BranchStream) -> u64 {
            s.next_record().expect("nonempty").pc
        }
        assert_eq!(first_pc(&mut stream), 0x10);
        // The original stream advanced through the reference.
        assert_eq!(stream.next_record().expect("second").pc, 0x20);
    }
}
