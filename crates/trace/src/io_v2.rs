//! Trace format v2: block-framed, delta-encoded records.
//!
//! Format v1 (see `io.rs`) spends a fixed 22 bytes per record and
//! is written and parsed field-by-field — five small `read_exact` calls
//! per record. Version 2 keeps the same header, then frames records
//! into *blocks* that are written and read with one large I/O each:
//!
//! ```text
//! magic  "BPTR"            4 bytes
//! version u32              2
//! name_len u32, name bytes
//! record_count u64         u64::MAX when unknown (streamed writes)
//! blocks:
//!   count u32              records in this block (> 0)
//!   payload_len u32        payload bytes (> 0)
//!   payload                delta-encoded records
//! terminator:
//!   count u32 = 0
//!   payload_len u32 = 8
//!   payload                total record count u64 (authoritative)
//! ```
//!
//! Within a block each record is:
//!
//! ```text
//! flags   u8               kind code in bits 0..2, taken in bit 3,
//!                          bits 4..7 reserved (must be zero)
//! pc      varint           zigzag(pc - previous record's pc)
//! target  varint           zigzag(target - pc)
//! leading varint           leading_instructions
//! ```
//!
//! Varints are LEB128. The PC delta chain resets at every block
//! boundary (the first record of a block encodes its delta from 0), so
//! blocks are independently decodable — the property future sharding /
//! parallel-decode work builds on.
//!
//! The terminator block makes truncation detectable even for streamed
//! writes whose header count is unknown: a file that ends without the
//! terminator is reported as an I/O error, and a terminator whose count
//! disagrees with the records actually decoded is a
//! [`TraceIoError::CountMismatch`] — never a silent short read.

use crate::io::TraceIoError;
use crate::record::{BranchKind, BranchRecord};
use crate::trace::Trace;
use std::io::{Read, Write};

/// Version tag written by [`write_trace_v2`] and [`BlockWriter`].
pub(crate) const VERSION_2: u32 = 2;

/// Header count sentinel for "record count unknown at write time".
pub(crate) const UNKNOWN_COUNT: u64 = u64::MAX;

/// Records per block before the writer flushes: large enough to
/// amortize frame headers and per-block syscalls to noise, small
/// enough that a block's decoded form (~24 bytes/record) stays
/// cache-resident between the decode pass and the consumer.
const BLOCK_RECORDS: u32 = 4096;

/// Sanity cap on a block's payload length: a corrupt frame must hit the
/// error path, not a multi-gigabyte allocation. Writers flushing at
/// [`BLOCK_RECORDS`] stay far below this even at the ~26-byte worst
/// case per record.
const MAX_BLOCK_BYTES: u32 = 1 << 24;

/// Reserved flag bits that must be zero in every record's flags byte.
const FLAG_RESERVED: u8 = 0xF0;
/// Taken bit in the flags byte.
const FLAG_TAKEN: u8 = 0x08;
/// Kind code mask in the flags byte.
const FLAG_KIND: u8 = 0x07;

#[inline]
fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[inline]
fn push_varint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Precomputed layout of a record whose three varints are all 1–2
/// bytes: bit shifts (`s*`) of each varint's first byte within the
/// 8-byte window, second-byte masks (`m*`: `0x7F` for 2-byte varints,
/// `0` for 1-byte ones), and the record's total byte length. `len == 0`
/// marks layouts that need the careful path (a varint continuing past
/// two bytes).
#[derive(Clone, Copy)]
struct FastLayout {
    s1: u8,
    m1: u8,
    s2: u8,
    m2: u8,
    s3: u8,
    m3: u8,
    len: u8,
}

/// Layout table indexed by the continuation bits of window bytes 1..=6.
///
/// Varint *lengths* are data-dependent, so decoding them sequentially
/// chains a load → test → advance dependency through every field of
/// every record. Gathering all continuation bits at once and looking
/// the whole record layout up from one hot cache region leaves the
/// three value extractions mutually independent — the difference
/// between ~35 and ~20 cycles per record on the simulator's ingest
/// path.
const FAST_LAYOUTS: [FastLayout; 64] = build_fast_layouts();

const fn build_fast_layouts() -> [FastLayout; 64] {
    let empty = FastLayout {
        s1: 0,
        m1: 0,
        s2: 0,
        m2: 0,
        s3: 0,
        m3: 0,
        len: 0,
    };
    let mut table = [empty; 64];
    let mut idx = 0usize;
    while idx < 64 {
        // idx bit (j - 1) is the continuation bit of window byte j.
        let mut off = 1usize; // byte offset of the next varint
        let mut s = [0u8; 3];
        let mut m = [0u8; 3];
        let mut ok = true;
        let mut k = 0usize;
        while k < 3 {
            s[k] = (off * 8) as u8;
            if (idx >> (off - 1)) & 1 == 1 {
                if (idx >> off) & 1 == 1 {
                    // Continues past two bytes: careful path.
                    ok = false;
                    break;
                }
                m[k] = 0x7F;
                off += 2;
            } else {
                m[k] = 0;
                off += 1;
            }
            k += 1;
        }
        if ok {
            table[idx] = FastLayout {
                s1: s[0],
                m1: m[0],
                s2: s[1],
                m2: m[1],
                s3: s[2],
                m3: m[2],
                len: off as u8,
            };
        }
        idx += 1;
    }
    table
}

/// Careful per-byte LEB128 decoder, used at buffer ends and for
/// ≥3-byte varints: decodes one varint from `buf` at `*pos`, advancing
/// `*pos` past it.
///
/// # Errors
///
/// [`TraceIoError::BlockOverrun`] if the varint runs past the end of
/// the buffer, [`TraceIoError::BadVarint`] if it is longer than a u64.
fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64, TraceIoError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or(TraceIoError::BlockOverrun)?;
        *pos += 1;
        // The 10th byte of a u64 varint may only carry the top bit
        // (shift 63) and no continuation.
        if shift == 63 && byte > 1 {
            return Err(TraceIoError::BadVarint);
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(TraceIoError::BadVarint);
        }
    }
}

fn encode_record(payload: &mut Vec<u8>, record: &BranchRecord, prev_pc: u64) {
    let flags = record.kind.code() | if record.taken { FLAG_TAKEN } else { 0 };
    payload.push(flags);
    push_varint(
        payload,
        zigzag_encode(record.pc.wrapping_sub(prev_pc) as i64),
    );
    push_varint(
        payload,
        zigzag_encode(record.target.wrapping_sub(record.pc) as i64),
    );
    push_varint(payload, u64::from(record.leading_instructions));
}

/// Branch kind by code with invalid codes (5..=7) mapped arbitrarily;
/// validity is checked separately (deferred to the block accumulator on
/// the fast path), and a masked index into a power-of-two table needs
/// no bounds check or branch.
const KIND_BY_CODE: [BranchKind; 8] = [
    BranchKind::Conditional,
    BranchKind::Unconditional,
    BranchKind::Call,
    BranchKind::Return,
    BranchKind::Indirect,
    BranchKind::Conditional,
    BranchKind::Conditional,
    BranchKind::Conditional,
];

/// Decodes `count` records of a block payload into `out` (pre-sized by
/// the caller to exactly `count` slots).
///
/// The fast path per record is kept free of unpredictable branches and
/// off-chain loads: the layout index is gathered with a shift/or tree,
/// the layout table supplies shifts and masks for three mutually
/// independent field extractions, and flags validation is *deferred* —
/// an invalid kind code or reserved bit sets a sticky flag that
/// triggers a careful rescan for the precise typed error after the
/// loop, so the hot loop never branches on record contents.
fn decode_block(payload: &[u8], out: &mut [BranchRecord]) -> Result<(), TraceIoError> {
    let mut pos = 0usize;
    // The delta chain resets per block so blocks decode independently.
    let mut prev_pc = 0u64;
    let mut suspect = false;
    for slot in out.iter_mut() {
        // Fast path: a record whose three varints are all 1–2 bytes
        // fits, with its flags byte, in one 8-byte window (1 + 3×2 = 7)
        // — and realistic delta streams are almost entirely such
        // records. Block tails and longer varints take the careful
        // path.
        if let Some(win) = payload.get(pos..pos + 8) {
            let w = u64::from_le_bytes(win.try_into().expect("8 bytes"));
            // Continuation bits of window bytes 1..=6 → layout bits
            // 0..=5.
            let idx = (((w >> 15) & 0x01)
                | ((w >> 22) & 0x02)
                | ((w >> 29) & 0x04)
                | ((w >> 36) & 0x08)
                | ((w >> 43) & 0x10)
                | ((w >> 50) & 0x20)) as usize;
            let layout = FAST_LAYOUTS[idx & 0x3F];
            if layout.len != 0 {
                let flags = (w & 0xFF) as u8;
                suspect |= (flags & FLAG_RESERVED != 0) | (flags & FLAG_KIND >= 5);
                let kind = KIND_BY_CODE[(flags & FLAG_KIND) as usize];
                let d_pc = ((w >> layout.s1) & 0x7F)
                    | (((w >> (layout.s1 + 8)) & u64::from(layout.m1)) << 7);
                let d_target = ((w >> layout.s2) & 0x7F)
                    | (((w >> (layout.s2 + 8)) & u64::from(layout.m2)) << 7);
                let leading = ((w >> layout.s3) & 0x7F)
                    | (((w >> (layout.s3 + 8)) & u64::from(layout.m3)) << 7);
                pos += layout.len as usize;
                let pc = prev_pc.wrapping_add(zigzag_decode(d_pc) as u64);
                prev_pc = pc;
                *slot = BranchRecord {
                    pc,
                    target: pc.wrapping_add(zigzag_decode(d_target) as u64),
                    kind,
                    taken: flags & FLAG_TAKEN != 0,
                    // A 2-byte varint is at most 0x3FFF: always a valid
                    // u32.
                    leading_instructions: leading as u32,
                };
                continue;
            }
        }
        let record = decode_record_careful(payload, &mut pos, prev_pc)?;
        prev_pc = record.pc;
        *slot = record;
    }
    if suspect {
        return Err(rescan_for_error(payload, out.len()));
    }
    if pos < payload.len() {
        return Err(TraceIoError::BlockTrailingBytes(payload.len() - pos));
    }
    debug_assert_eq!(pos, payload.len(), "window decode cannot overrun");
    Ok(())
}

/// The fast loop flagged an invalid flags byte somewhere in the block;
/// replay it carefully to produce the precise typed error.
#[cold]
fn rescan_for_error(payload: &[u8], count: usize) -> TraceIoError {
    let mut pos = 0usize;
    let mut prev_pc = 0u64;
    for _ in 0..count {
        match decode_record_careful(payload, &mut pos, prev_pc) {
            Ok(record) => prev_pc = record.pc,
            Err(e) => return e,
        }
    }
    // Unreachable in practice: the sticky flag only fires on a byte the
    // careful decoder also rejects.
    TraceIoError::BlockOverrun
}

fn decode_record_careful(
    payload: &[u8],
    pos: &mut usize,
    prev_pc: u64,
) -> Result<BranchRecord, TraceIoError> {
    let flags = *payload.get(*pos).ok_or(TraceIoError::BlockOverrun)?;
    *pos += 1;
    if flags & FLAG_RESERVED != 0 {
        return Err(TraceIoError::BadFlags(flags));
    }
    let kind =
        BranchKind::from_code(flags & FLAG_KIND).ok_or(TraceIoError::BadKind(flags & FLAG_KIND))?;
    let pc = prev_pc.wrapping_add(zigzag_decode(read_varint(payload, pos)?) as u64);
    let target = pc.wrapping_add(zigzag_decode(read_varint(payload, pos)?) as u64);
    let leading = read_varint(payload, pos)?;
    let leading = u32::try_from(leading).map_err(|_| TraceIoError::BadVarint)?;
    Ok(BranchRecord {
        pc,
        target,
        kind,
        taken: flags & FLAG_TAKEN != 0,
        leading_instructions: leading,
    })
}

pub(crate) fn write_header<W: Write>(
    writer: &mut W,
    name: &str,
    count: u64,
) -> Result<(), TraceIoError> {
    writer.write_all(crate::io::MAGIC)?;
    writer.write_all(&VERSION_2.to_le_bytes())?;
    let name = name.as_bytes();
    writer.write_all(&(name.len() as u32).to_le_bytes())?;
    writer.write_all(name)?;
    writer.write_all(&count.to_le_bytes())?;
    Ok(())
}

/// Streaming block writer for trace format v2.
///
/// Records are delta-encoded into an in-memory block and flushed to the
/// underlying writer with **one `write_all` per block** (4096 records),
/// instead of v1's five small writes per record. The writer is
/// streaming: it never holds more than one block, so a trace of any
/// length serializes in O(1) memory — which is what lets
/// `bp_workloads` cache generated benchmarks to disk without
/// materializing them.
///
/// [`BlockWriter::finish`] **must** be called: it flushes the final
/// partial block and writes the terminator frame carrying the
/// authoritative record count. A file abandoned mid-write has no
/// terminator and is reported as truncated by the reader.
///
/// ```
/// use bp_trace::{read_trace, BlockWriter, BranchRecord};
///
/// let mut buf = Vec::new();
/// let mut w = BlockWriter::new(&mut buf, "streamed").unwrap();
/// w.push(&BranchRecord::conditional(0x400, 0x3f0, true)).unwrap();
/// w.push(&BranchRecord::conditional(0x404, 0x3f0, false)).unwrap();
/// assert_eq!(w.finish().unwrap(), 2);
///
/// let back = read_trace(buf.as_slice()).unwrap();
/// assert_eq!(back.len(), 2);
/// assert_eq!(back.name(), "streamed");
/// ```
#[derive(Debug)]
pub struct BlockWriter<W: Write> {
    writer: W,
    /// Frame under construction: 8 header bytes then the payload.
    frame: Vec<u8>,
    block_records: u32,
    prev_pc: u64,
    total: u64,
    declared: Option<u64>,
}

impl<W: Write> BlockWriter<W> {
    /// Opens a v2 stream with an *unknown* record count (the header
    /// carries a sentinel; readers learn the true count from the
    /// terminator frame).
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::Io`] if writing the header fails.
    pub fn new(writer: W, name: &str) -> Result<Self, TraceIoError> {
        Self::open(writer, name, None)
    }

    /// Opens a v2 stream whose record count is known up front, letting
    /// readers report exact [`remaining()`](crate::TraceReader::remaining)
    /// counts. [`BlockWriter::finish`] fails with
    /// [`TraceIoError::CountMismatch`] if a different number of records
    /// was pushed.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::Io`] if writing the header fails.
    pub fn with_declared_count(writer: W, name: &str, count: u64) -> Result<Self, TraceIoError> {
        Self::open(writer, name, Some(count))
    }

    fn open(mut writer: W, name: &str, declared: Option<u64>) -> Result<Self, TraceIoError> {
        write_header(&mut writer, name, declared.unwrap_or(UNKNOWN_COUNT))?;
        let mut frame = Vec::with_capacity(BLOCK_RECORDS as usize * 8);
        frame.resize(8, 0);
        Ok(BlockWriter {
            writer,
            frame,
            block_records: 0,
            prev_pc: 0,
            total: 0,
            declared,
        })
    }

    /// Appends one record, flushing a full block to the writer.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::Io`] if a block flush fails.
    pub fn push(&mut self, record: &BranchRecord) -> Result<(), TraceIoError> {
        encode_record(&mut self.frame, record, self.prev_pc);
        self.prev_pc = record.pc;
        self.block_records += 1;
        self.total += 1;
        if self.block_records == BLOCK_RECORDS {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> Result<(), TraceIoError> {
        if self.block_records == 0 {
            return Ok(());
        }
        let payload_len = (self.frame.len() - 8) as u32;
        self.frame[0..4].copy_from_slice(&self.block_records.to_le_bytes());
        self.frame[4..8].copy_from_slice(&payload_len.to_le_bytes());
        self.writer.write_all(&self.frame)?;
        self.frame.truncate(0);
        self.frame.resize(8, 0);
        self.block_records = 0;
        // Delta chain resets per block so blocks decode independently.
        self.prev_pc = 0;
        Ok(())
    }

    /// Flushes the final block, writes the terminator frame, and
    /// flushes the underlying writer. Returns the total record count.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::Io`] on write failure, or
    /// [`TraceIoError::CountMismatch`] if a count declared at open time
    /// does not match the records actually pushed.
    pub fn finish(mut self) -> Result<u64, TraceIoError> {
        self.flush_block()?;
        if let Some(declared) = self.declared {
            if declared != self.total {
                return Err(TraceIoError::CountMismatch {
                    declared,
                    actual: self.total,
                });
            }
        }
        let mut terminator = [0u8; 16];
        terminator[4..8].copy_from_slice(&8u32.to_le_bytes());
        terminator[8..16].copy_from_slice(&self.total.to_le_bytes());
        self.writer.write_all(&terminator)?;
        self.writer.flush()?;
        Ok(self.total)
    }
}

/// Serializes `trace` in format v2 (block-framed, delta-encoded).
///
/// The v2 encoding of realistic traces is a fraction of the v1 size
/// (see `BENCH_trace_io.json`); [`crate::read_trace`] and
/// [`crate::TraceReader`] read both versions transparently.
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] if the underlying writer fails.
pub fn write_trace_v2<W: Write>(writer: W, trace: &Trace) -> Result<(), TraceIoError> {
    let mut w = BlockWriter::with_declared_count(writer, trace.name(), trace.len() as u64)?;
    for record in trace.iter() {
        w.push(record)?;
    }
    w.finish()?;
    Ok(())
}

/// Reader-side state for a v2 body (header already consumed by
/// [`crate::TraceReader`]). Reads one block frame at a time with a
/// single large `read_exact`, batch-decodes the whole payload into a
/// record buffer in one tight loop, then hands records out as a plain
/// cursor — so the per-record hot path in the simulator is an indexed
/// copy, not a decoder state machine.
#[derive(Debug)]
pub(crate) struct V2Body<R> {
    reader: R,
    /// Header-declared record count, if the writer knew it.
    declared: Option<u64>,
    /// Records handed out so far.
    read: u64,
    /// The current block, fully decoded by `load_block`.
    records: Vec<BranchRecord>,
    /// Hand-out cursor into `records`.
    next: usize,
    /// Reused raw-payload scratch buffer.
    payload: Vec<u8>,
    finished: bool,
}

impl<R: Read> V2Body<R> {
    pub(crate) fn new(reader: R, header_count: u64) -> Self {
        V2Body {
            reader,
            declared: (header_count != UNKNOWN_COUNT).then_some(header_count),
            read: 0,
            records: Vec::new(),
            next: 0,
            payload: Vec::new(),
            finished: false,
        }
    }

    /// Records the stream still claims to contain: exact when the
    /// header carried a count, otherwise the records left in the
    /// current block (a lower bound).
    pub(crate) fn remaining(&self) -> usize {
        match self.declared {
            _ if self.finished => 0,
            Some(declared) => declared.saturating_sub(self.read) as usize,
            None => self.records.len() - self.next,
        }
    }

    pub(crate) fn declared(&self) -> Option<u64> {
        self.declared.map(|d| d.saturating_sub(self.read))
    }

    /// Cursor-hit fast path: the next record of the current block, with
    /// no `Result` plumbing. `None` means the block is drained — call
    /// [`V2Body::try_next`] to load the next one (or learn why not).
    #[inline]
    pub(crate) fn next_cached(&mut self) -> Option<BranchRecord> {
        let record = self.records.get(self.next).copied()?;
        self.next += 1;
        self.read += 1;
        Some(record)
    }

    #[inline]
    pub(crate) fn try_next(&mut self) -> Result<Option<BranchRecord>, TraceIoError> {
        loop {
            if let Some(&record) = self.records.get(self.next) {
                self.next += 1;
                self.read += 1;
                return Ok(Some(record));
            }
            if self.finished {
                return Ok(None);
            }
            match self.load_block() {
                Ok(true) => continue,
                Ok(false) => return Ok(None),
                Err(e) => {
                    // A failed block may have left partially decoded
                    // records behind; drop them so the stream yields
                    // nothing further.
                    self.records.clear();
                    self.next = 0;
                    self.finished = true;
                    return Err(e);
                }
            }
        }
    }

    /// Reads and decodes the next block frame. Returns `false` on the
    /// terminator. Out of line: runs once per 4096 records, and keeping
    /// it out of `try_next` lets the hot cursor path inline.
    #[inline(never)]
    fn load_block(&mut self) -> Result<bool, TraceIoError> {
        let mut header = [0u8; 8];
        self.reader.read_exact(&mut header)?;
        let count = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        let payload_len = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if count == 0 {
            // Terminator: payload is the authoritative total count.
            if payload_len != 8 {
                return Err(TraceIoError::BadTerminator(payload_len));
            }
            let mut total = [0u8; 8];
            self.reader.read_exact(&mut total)?;
            let total = u64::from_le_bytes(total);
            if total != self.read {
                return Err(TraceIoError::CountMismatch {
                    declared: total,
                    actual: self.read,
                });
            }
            if let Some(declared) = self.declared {
                if declared != self.read {
                    return Err(TraceIoError::CountMismatch {
                        declared,
                        actual: self.read,
                    });
                }
            }
            self.finished = true;
            return Ok(false);
        }
        if payload_len > MAX_BLOCK_BYTES {
            return Err(TraceIoError::BlockTooLarge(payload_len));
        }
        if payload_len == 0 {
            return Err(TraceIoError::BlockOverrun);
        }
        // A record is at least 4 bytes (flags + three 1-byte varints),
        // so a count the payload cannot possibly hold is provably
        // corrupt — reject it *before* sizing the decode buffer, or a
        // lying count field would trigger a multi-gigabyte allocation.
        if u64::from(count) * 4 > u64::from(payload_len) {
            return Err(TraceIoError::BlockOverrun);
        }
        // One large read per block instead of five small reads per
        // record, then one tight batch-decode loop whose output the
        // consumer drains as a plain cursor — the core of the v2
        // throughput win.
        self.payload.resize(payload_len as usize, 0);
        self.reader.read_exact(&mut self.payload)?;
        self.records.clear();
        self.records
            .resize(count as usize, BranchRecord::conditional(0, 0, false));
        decode_block(&self.payload, &mut self.records)?;
        self.next = 0;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::read_trace;

    fn sample(n: usize) -> Trace {
        let mut t = Trace::new("v2-sample");
        for i in 0..n {
            let pc = 0x40_0000 + (i as u64 % 97) * 4;
            t.push(
                BranchRecord::conditional(pc, pc.wrapping_sub(0x40), i % 3 == 0)
                    .with_leading_instructions((i % 11) as u32),
            );
        }
        t
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 4096, -4096] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn varint_round_trips_extremes() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX, u64::MAX - 1] {
            let mut buf = Vec::new();
            push_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_overflow_is_rejected() {
        // 10 continuation bytes followed by a large final byte encode
        // more than 64 bits.
        let buf = [0xFFu8; 11];
        let mut pos = 0;
        assert!(matches!(
            read_varint(&buf, &mut pos),
            Err(TraceIoError::BadVarint)
        ));
        // A varint cut off mid-way is an overrun, not a panic.
        let buf = [0x80u8];
        let mut pos = 0;
        assert!(matches!(
            read_varint(&buf, &mut pos),
            Err(TraceIoError::BlockOverrun)
        ));
    }

    #[test]
    fn multi_block_trace_round_trips() {
        // More than BLOCK_RECORDS records forces several block frames.
        let t = sample(10_000);
        let mut buf = Vec::new();
        write_trace_v2(&mut buf, &t).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = Trace::new("empty");
        let mut buf = Vec::new();
        write_trace_v2(&mut buf, &t).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.name(), "empty");
    }

    #[test]
    fn v2_is_much_smaller_than_v1_on_regular_traces() {
        let t = sample(8_192);
        let mut v1 = Vec::new();
        crate::io::write_trace(&mut v1, &t).unwrap();
        let mut v2 = Vec::new();
        write_trace_v2(&mut v2, &t).unwrap();
        assert!(
            v2.len() * 2 <= v1.len(),
            "v2 {} bytes not <= 50% of v1 {} bytes",
            v2.len(),
            v1.len()
        );
    }

    #[test]
    fn streamed_writer_without_declared_count_round_trips() {
        let t = sample(5_000);
        let mut buf = Vec::new();
        let mut w = BlockWriter::new(&mut buf, t.name()).unwrap();
        for r in t.iter() {
            w.push(r).unwrap();
        }
        assert_eq!(w.finish().unwrap(), 5_000);
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn declared_count_mismatch_is_reported_at_finish() {
        let mut buf = Vec::new();
        let mut w = BlockWriter::with_declared_count(&mut buf, "short", 3).unwrap();
        w.push(&BranchRecord::conditional(0x40, 0x20, true))
            .unwrap();
        let err = w.finish().unwrap_err();
        assert!(matches!(
            err,
            TraceIoError::CountMismatch {
                declared: 3,
                actual: 1
            }
        ));
    }

    #[test]
    fn missing_terminator_reads_as_truncation() {
        let t = sample(100);
        let mut buf = Vec::new();
        write_trace_v2(&mut buf, &t).unwrap();
        buf.truncate(buf.len() - 16); // drop the terminator frame
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::Io(_)));
    }

    #[test]
    fn truncated_block_payload_reads_as_truncation() {
        let t = sample(100);
        let mut buf = Vec::new();
        write_trace_v2(&mut buf, &t).unwrap();
        buf.truncate(30); // mid-payload of the first block
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::Io(_)));
    }

    #[test]
    fn lying_terminator_count_is_a_count_mismatch() {
        let t = sample(10);
        let mut buf = Vec::new();
        write_trace_v2(&mut buf, &t).unwrap();
        let n = buf.len();
        buf[n - 8..].copy_from_slice(&99u64.to_le_bytes());
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(
            err,
            TraceIoError::CountMismatch {
                declared: 99,
                actual: 10
            }
        ));
    }

    #[test]
    fn reserved_flag_bits_are_rejected() {
        let t = sample(10);
        let mut buf = Vec::new();
        write_trace_v2(&mut buf, &t).unwrap();
        // First record's flags byte sits right after header + first
        // block frame header.
        let flags_offset = 4 + 4 + 4 + "v2-sample".len() + 8 + 8;
        buf[flags_offset] |= 0x40;
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::BadFlags(_)));
    }

    #[test]
    fn bad_kind_code_is_rejected() {
        let t = sample(10);
        let mut buf = Vec::new();
        write_trace_v2(&mut buf, &t).unwrap();
        let flags_offset = 4 + 4 + 4 + "v2-sample".len() + 8 + 8;
        buf[flags_offset] = (buf[flags_offset] & !FLAG_KIND) | 5;
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::BadKind(5)));
    }

    #[test]
    fn lying_record_count_is_rejected_without_allocating() {
        // A block claiming u32::MAX records in a 16-byte payload must
        // hit the error path before the decode buffer is sized.
        let mut buf = Vec::new();
        write_header(&mut buf, "x", UNKNOWN_COUNT).unwrap();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&16u32.to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::BlockOverrun));
    }

    #[test]
    fn oversized_block_length_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        write_header(&mut buf, "x", UNKNOWN_COUNT).unwrap();
        buf.extend_from_slice(&1u32.to_le_bytes()); // one record claimed
        buf.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd length
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::BlockTooLarge(u32::MAX)));
    }

    #[test]
    fn bad_terminator_length_is_rejected() {
        let mut buf = Vec::new();
        write_header(&mut buf, "x", UNKNOWN_COUNT).unwrap();
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&4u32.to_le_bytes()); // must be 8
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::BadTerminator(4)));
    }

    #[test]
    fn trailing_bytes_in_block_are_rejected() {
        // Hand-build a block claiming 1 record but carrying 2.
        let mut payload = Vec::new();
        let r = BranchRecord::conditional(0x40, 0x20, true);
        encode_record(&mut payload, &r, 0);
        encode_record(&mut payload, &r, r.pc);
        let mut buf = Vec::new();
        write_header(&mut buf, "x", UNKNOWN_COUNT).unwrap();
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&payload);
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::BlockTrailingBytes(_)));
    }

    #[test]
    fn overrun_block_is_rejected() {
        // A block claiming 2 records but carrying bytes for 1.
        let mut payload = Vec::new();
        encode_record(
            &mut payload,
            &BranchRecord::conditional(0x40, 0x20, true),
            0,
        );
        let mut buf = Vec::new();
        write_header(&mut buf, "x", UNKNOWN_COUNT).unwrap();
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&payload);
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::BlockOverrun));
    }

    #[test]
    fn extreme_field_values_round_trip() {
        let mut t = Trace::new("extremes");
        t.push(BranchRecord {
            pc: u64::MAX,
            target: 0,
            kind: BranchKind::Indirect,
            taken: false,
            leading_instructions: u32::MAX,
        });
        t.push(BranchRecord::conditional(0, u64::MAX, true));
        let mut buf = Vec::new();
        write_trace_v2(&mut buf, &t).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }
}

#[cfg(test)]
mod probe {
    use super::*;
    use std::time::Instant;

    #[test]
    #[ignore]
    fn decode_cost_breakdown() {
        // Build a realistic-ish delta stream: small pc deltas, backward
        // targets, small leading counts.
        let mut t = Trace::new("probe");
        let mut pc = 0x40_0000u64;
        for i in 0..1_000_000u64 {
            pc = pc.wrapping_add((i % 37) * 4);
            let target = pc.wrapping_sub(0x80 + (i % 9) * 8);
            t.push(
                BranchRecord::conditional(pc, target, i % 3 == 0)
                    .with_leading_instructions((i % 11) as u32),
            );
        }
        let mut v2 = Vec::new();
        write_trace_v2(&mut v2, &t).unwrap();
        let n = t.len() as f64;

        for _ in 0..3 {
            // Raw body decode over the in-memory payload, no reader
            // dispatch.
            let started = Instant::now();
            let mut body = V2Body::new(&v2[4 + 4 + 4 + 5 + 8..], UNKNOWN_COUNT);
            let mut records = 0u64;
            while body.try_next().unwrap().is_some() {
                records += 1;
            }
            let batch = started.elapsed().as_secs_f64();

            // Pure decode_block over one prepared payload, repeated.
            let mut payload = Vec::new();
            let mut prev = 0u64;
            for r in t.iter().take(4096) {
                encode_record(&mut payload, r, prev);
                prev = r.pc;
            }
            let mut out = vec![BranchRecord::conditional(0, 0, false); 4096];
            let started = Instant::now();
            let iters = 250;
            for _ in 0..iters {
                decode_block(&payload, &mut out).unwrap();
            }
            let pure = started.elapsed().as_secs_f64() / (iters as f64 * 4096.0);
            eprintln!("pure decode_block {:.2} ns/rec", pure * 1e9);

            // Full reader drain.
            let started = Instant::now();
            let mut reader = crate::io::TraceReader::new(v2.as_slice()).unwrap();
            let mut drained = 0u64;
            while reader.try_next().unwrap().is_some() {
                drained += 1;
            }
            let full = started.elapsed().as_secs_f64();

            assert_eq!(records, 1_000_000);
            assert_eq!(drained, 1_000_000);
            eprintln!(
                "batch decode {:.2} ns/rec | full drain {:.2} ns/rec",
                batch * 1e9 / n,
                full * 1e9 / n
            );
        }
    }
}
