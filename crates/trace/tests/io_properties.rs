//! Property tests for the trace serialization format.

use bp_trace::{read_trace, write_trace, BranchKind, BranchRecord, Trace};
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = BranchRecord> {
    (
        any::<u64>(),
        any::<u64>(),
        0u8..5,
        any::<bool>(),
        any::<u32>(),
    )
        .prop_map(|(pc, target, kind, taken, lead)| BranchRecord {
            pc,
            target,
            kind: BranchKind::from_code(kind).expect("in range"),
            taken,
            leading_instructions: lead,
        })
}

proptest! {
    /// Any trace — arbitrary PCs, targets, kinds, flags, and name —
    /// survives a serialize/deserialize round trip bit-exactly.
    #[test]
    fn round_trip_is_identity(
        name in "[a-zA-Z0-9 _-]{0,40}",
        records in proptest::collection::vec(arb_record(), 0..200),
    ) {
        let mut trace = Trace::new(name);
        trace.extend(records);
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).expect("serialize");
        let back = read_trace(buf.as_slice()).expect("deserialize");
        prop_assert_eq!(back, trace);
    }

    /// Truncating a serialized trace at any point either still parses to
    /// a prefix-consistent header error or fails cleanly — never panics.
    #[test]
    fn truncation_never_panics(
        records in proptest::collection::vec(arb_record(), 0..50),
        cut_fraction in 0.0f64..1.0,
    ) {
        let mut trace = Trace::new("t");
        trace.extend(records);
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).expect("serialize");
        let cut = ((buf.len() as f64) * cut_fraction) as usize;
        let _ = read_trace(&buf[..cut]); // any Result is fine; no panic
    }

    /// Statistics are invariant under serialization.
    #[test]
    fn stats_survive_round_trip(
        records in proptest::collection::vec(arb_record(), 1..100),
    ) {
        let mut trace = Trace::new("s");
        trace.extend(records);
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).expect("serialize");
        let back = read_trace(buf.as_slice()).expect("deserialize");
        prop_assert_eq!(back.stats(), trace.stats());
        prop_assert_eq!(back.instruction_count(), trace.instruction_count());
        prop_assert_eq!(back.conditional_count(), trace.conditional_count());
    }
}
