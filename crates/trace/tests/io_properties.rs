//! Property tests for the trace serialization formats (v1 and v2).

use bp_trace::{
    read_trace, write_trace, write_trace_v2, BlockWriter, BranchKind, BranchRecord, BranchStream,
    Trace, TraceReader,
};
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = BranchRecord> {
    (
        any::<u64>(),
        any::<u64>(),
        0u8..5,
        any::<bool>(),
        any::<u32>(),
    )
        .prop_map(|(pc, target, kind, taken, lead)| BranchRecord {
            pc,
            target,
            kind: BranchKind::from_code(kind).expect("in range"),
            taken,
            leading_instructions: lead,
        })
}

proptest! {
    /// Any trace — arbitrary PCs, targets, kinds, flags, and name —
    /// survives a serialize/deserialize round trip bit-exactly.
    #[test]
    fn round_trip_is_identity(
        name in "[a-zA-Z0-9 _-]{0,40}",
        records in proptest::collection::vec(arb_record(), 0..200),
    ) {
        let mut trace = Trace::new(name);
        trace.extend(records);
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).expect("serialize");
        let back = read_trace(buf.as_slice()).expect("deserialize");
        prop_assert_eq!(back, trace);
    }

    /// Truncating a serialized trace at any point either still parses to
    /// a prefix-consistent header error or fails cleanly — never panics.
    #[test]
    fn truncation_never_panics(
        records in proptest::collection::vec(arb_record(), 0..50),
        cut_fraction in 0.0f64..1.0,
    ) {
        let mut trace = Trace::new("t");
        trace.extend(records);
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).expect("serialize");
        let cut = ((buf.len() as f64) * cut_fraction) as usize;
        let _ = read_trace(&buf[..cut]); // any Result is fine; no panic
    }

    /// Statistics are invariant under serialization.
    #[test]
    fn stats_survive_round_trip(
        records in proptest::collection::vec(arb_record(), 1..100),
    ) {
        let mut trace = Trace::new("s");
        trace.extend(records);
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).expect("serialize");
        let back = read_trace(buf.as_slice()).expect("deserialize");
        prop_assert_eq!(back.stats(), trace.stats());
        prop_assert_eq!(back.instruction_count(), trace.instruction_count());
        prop_assert_eq!(back.conditional_count(), trace.conditional_count());
    }

    /// Any trace — arbitrary PCs, targets, kinds, flags, and name —
    /// survives a v2 (block-framed, delta-encoded) round trip
    /// bit-exactly through the version-dispatching reader.
    #[test]
    fn v2_round_trip_is_identity(
        name in "[a-zA-Z0-9 _-]{0,40}",
        records in proptest::collection::vec(arb_record(), 0..300),
    ) {
        let mut trace = Trace::new(name);
        trace.extend(records);
        let mut buf = Vec::new();
        write_trace_v2(&mut buf, &trace).expect("serialize v2");
        let back = read_trace(buf.as_slice()).expect("deserialize v2");
        prop_assert_eq!(back, trace);
    }

    /// The streaming v2 writer (record count unknown until finish)
    /// produces a file the reader replays identically.
    #[test]
    fn v2_streamed_write_round_trips(
        records in proptest::collection::vec(arb_record(), 0..200),
    ) {
        let mut trace = Trace::new("streamed");
        trace.extend(records);
        let mut buf = Vec::new();
        let mut writer = BlockWriter::new(&mut buf, trace.name()).expect("header");
        for r in trace.iter() {
            writer.push(r).expect("push");
        }
        prop_assert_eq!(writer.finish().expect("finish"), trace.len() as u64);
        let back = read_trace(buf.as_slice()).expect("deserialize");
        prop_assert_eq!(back, trace);
    }

    /// Truncating a v2 file at any point either errors cleanly or
    /// (before the terminator is reached) never yields more records
    /// than were written — no panics, no silently invented data.
    #[test]
    fn v2_truncation_never_panics(
        records in proptest::collection::vec(arb_record(), 0..100),
        cut_fraction in 0.0f64..1.0,
    ) {
        let mut trace = Trace::new("t");
        trace.extend(records);
        let mut buf = Vec::new();
        write_trace_v2(&mut buf, &trace).expect("serialize");
        let cut = ((buf.len() as f64) * cut_fraction) as usize;
        if let Ok(back) = read_trace(&buf[..cut]) {
            prop_assert_eq!(back, trace.clone());
        } // any typed error is fine; no panic
    }

    /// The version-dispatching reader reports the header version and
    /// reads both formats of the same trace to identical records.
    #[test]
    fn version_dispatch_reads_both_formats(
        records in proptest::collection::vec(arb_record(), 0..150),
    ) {
        let mut trace = Trace::new("both");
        trace.extend(records);
        let mut v1 = Vec::new();
        write_trace(&mut v1, &trace).expect("v1");
        let mut v2 = Vec::new();
        write_trace_v2(&mut v2, &trace).expect("v2");
        let r1 = TraceReader::new(v1.as_slice()).expect("open v1");
        let r2 = TraceReader::new(v2.as_slice()).expect("open v2");
        prop_assert_eq!(r1.version(), 1);
        prop_assert_eq!(r2.version(), 2);
        prop_assert_eq!(r1.remaining(), trace.len());
        prop_assert_eq!(r2.remaining(), trace.len());
        prop_assert_eq!(r1.collect_trace(), trace.clone());
        prop_assert_eq!(r2.collect_trace(), trace);
    }

    /// v2's size is tightly bounded even on adversarial traces: a v1
    /// record is a fixed 22 bytes, a v2 record is at worst 26 (flags +
    /// two 10-byte zigzag varints + a 5-byte leading varint, when every
    /// delta is a full-width random u64), plus 8 bytes per block frame
    /// and a 16-byte terminator. Realistic delta-friendly traces are a
    /// fraction of v1 (covered by unit tests and `bp bench`); this
    /// property pins the worst case.
    #[test]
    fn v2_size_is_bounded_even_on_random_traces(
        records in proptest::collection::vec(arb_record(), 64..256),
    ) {
        let mut trace = Trace::new("sz");
        trace.extend(records);
        let mut v1 = Vec::new();
        write_trace(&mut v1, &trace).expect("v1");
        let mut v2 = Vec::new();
        write_trace_v2(&mut v2, &trace).expect("v2");
        let worst = v1.len() + 4 * trace.len() + 8 + 16;
        prop_assert!(v2.len() <= worst, "v2 {} > bound {}", v2.len(), worst);
    }
}
