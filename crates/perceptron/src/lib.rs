//! The hashed perceptron predictor (Tarjan & Skadron, TACO 2005), with
//! IMLI integration.
//!
//! The IMLI paper's §1 claims its components can be added to *any*
//! neural-inspired predictor — it cites the hashed perceptron and SNAP as
//! members of the family alongside GEHL. This crate provides that third
//! host: a classic hashed perceptron (weight tables indexed by hashes of
//! the PC with global-history segments, magnitude-threshold training)
//! whose summation optionally includes the IMLI-SIC and IMLI-OH
//! components, reusing the exact same [`imli::ImliState`] plumbing as the
//! TAGE-GSC and GEHL hosts. The workspace's generality experiment
//! (`exp_generality`) shows the same benchmarks benefitting on all three
//! hosts.

#![warn(missing_docs)]

use bp_components::{
    clamp_pipeline_depth, mix64, pc_bits, sum_centered, AdaptiveThreshold, ConditionalPredictor,
    ConfidenceBucket, ConfigError, ConfigValue, CounterBank, PredictionAttribution,
    PredictorConfig, PredictorStats, ProviderComponent, StorageBudget, StorageItem, SumCtx,
    DEFAULT_PIPELINE_DEPTH, MAX_PIPELINE_DEPTH,
};
use bp_history::HistoryState;
use bp_trace::BranchRecord;
use imli::{ImliConfig, ImliState};

/// Configuration of a [`HashedPerceptron`].
#[derive(Debug, Clone)]
pub struct PerceptronConfig {
    /// log2 of each weight table's entry count.
    pub log_entries: usize,
    /// Weight width in bits.
    pub weight_bits: usize,
    /// Global-history segment lengths, one weight table per entry;
    /// length 0 means a PC-only (bias) table.
    pub segments: Vec<usize>,
    /// Path history bits.
    pub path_bits: usize,
    /// IMLI components, if any.
    pub imli: Option<ImliConfig>,
    /// Initial / maximum adaptive training threshold.
    pub threshold_init: i32,
    /// Threshold ceiling.
    pub threshold_max: i32,
    /// Display name.
    pub name: String,
}

impl PerceptronConfig {
    /// A ~96 Kbit hashed perceptron: 8 tables of 2K 6-bit weights over
    /// history segments 0..256.
    // bp-lint: allow-item(hot-path-alloc, "config construction is cold; runs once per predictor, never per branch")
    pub fn base() -> Self {
        PerceptronConfig {
            log_entries: 11,
            weight_bits: 6,
            segments: vec![0, 4, 9, 17, 33, 64, 128, 256],
            path_bits: 16,
            imli: None,
            threshold_init: 14,
            threshold_max: 255,
            name: "HP".to_owned(),
        }
    }

    /// The base perceptron plus both IMLI components (the paper's "any
    /// neural-inspired predictor" claim).
    // bp-lint: allow-item(hot-path-alloc, "config construction is cold; runs once per predictor, never per branch")
    pub fn imli() -> Self {
        PerceptronConfig {
            imli: Some(ImliConfig::default()),
            name: "HP+IMLI".to_owned(),
            ..Self::base()
        }
    }

    /// Validates the geometry.
    ///
    /// # Panics
    ///
    /// Panics on an empty segment list, out-of-range widths, or
    /// non-increasing non-zero segments. The non-panicking twin is
    /// [`PerceptronConfig::check`].
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            // bp-lint: allow(panic-surface, "documented legacy panicking API; the validate-then-build path uses the non-panicking check()")
            panic!("{e}");
        }
    }

    /// Checks the geometry, returning the first violation instead of
    /// panicking.
    pub fn check(&self) -> Result<(), ConfigError> {
        if self.segments.is_empty() {
            return Err("need at least one table".into());
        }
        if self.segments.len() > 64 {
            return Err("at most 64 tables".into());
        }
        if self.segments.iter().any(|&s| s > 65536) {
            return Err("segments must be at most 65536".into());
        }
        if !(6..=16).contains(&self.log_entries) {
            return Err("log_entries out of range".into());
        }
        if !(2..=7).contains(&self.weight_bits) {
            return Err("weight width out of range".into());
        }
        if !(0..=self.threshold_max).contains(&self.threshold_init) {
            return Err("threshold_init must be in 0..=threshold_max".into());
        }
        for w in self.segments.windows(2) {
            if w[0] >= w[1] {
                return Err("segments must be strictly increasing".into());
            }
        }
        if let Some(imli) = &self.imli {
            imli.check()?;
        }
        Ok(())
    }
}

impl PredictorConfig for PerceptronConfig {
    fn validate(&self) -> Result<(), ConfigError> {
        self.check()
    }

    // bp-lint: allow-item(hot-path-alloc, "build() constructs a predictor once per run; the hot path is inside the built object")
    fn build(&self) -> Box<dyn ConditionalPredictor + Send> {
        Box::new(HashedPerceptron::new(self.clone()))
    }

    fn storage_bits_estimate(&self) -> u64 {
        let mut bits =
            self.segments.len() as u64 * (1u64 << self.log_entries) * self.weight_bits as u64;
        if let Some(imli) = &self.imli {
            bits += imli.state_storage_bits();
        }
        bits
    }

    fn to_value(&self) -> ConfigValue {
        ConfigValue::map()
            .set("name", ConfigValue::str(&self.name))
            .set("log_entries", ConfigValue::int(self.log_entries))
            .set("weight_bits", ConfigValue::int(self.weight_bits))
            .set("segments", ConfigValue::int_list(&self.segments))
            .set("path_bits", ConfigValue::int(self.path_bits))
            .set_opt("imli", self.imli.as_ref().map(ImliConfig::to_value))
            .set(
                "threshold_init",
                ConfigValue::Int(i64::from(self.threshold_init)),
            )
            .set(
                "threshold_max",
                ConfigValue::Int(i64::from(self.threshold_max)),
            )
    }

    // bp-lint: allow-item(hot-path-alloc, "config-file parsing is cold, once per run")
    fn from_value(value: &ConfigValue) -> Result<Self, ConfigError> {
        value.expect_keys(
            "perceptron config",
            &[
                "name",
                "log_entries",
                "weight_bits",
                "segments",
                "path_bits",
                "imli",
                "threshold_init",
                "threshold_max",
            ],
        )?;
        Ok(PerceptronConfig {
            name: value.req("name")?.as_str("name")?.to_owned(),
            log_entries: value.req("log_entries")?.as_usize("log_entries")?,
            weight_bits: value.req("weight_bits")?.as_usize("weight_bits")?,
            segments: value.req("segments")?.as_usize_list("segments")?,
            path_bits: value.req("path_bits")?.as_usize("path_bits")?,
            imli: value.get("imli").map(ImliConfig::from_value).transpose()?,
            threshold_init: value.req("threshold_init")?.as_i32("threshold_init")?,
            threshold_max: value.req("threshold_max")?.as_i32("threshold_max")?,
        })
    }
}

/// Upper bound on weight tables, enforced by [`PerceptronConfig::check`];
/// sizes the stack buffers of the two-phase prediction path.
const HP_MAX_TABLES: usize = 64;

/// The hashed perceptron predictor. Each weight table is indexed with a
/// hash of the PC and one *segment* of the global history; the
/// prediction is the sign of the summed weights; training is gated by
/// the adaptive magnitude threshold.
pub struct HashedPerceptron {
    config: PerceptronConfig,
    tables: CounterBank,
    folds: Vec<Option<usize>>,
    history: HistoryState,
    imli: Option<ImliState>,
    threshold: AdaptiveThreshold,
    lookup: Option<(SumCtx, i32)>,
    /// Indices computed by the index phase of [`HashedPerceptron::predict_full`];
    /// `update` reuses them (history only advances at the end of
    /// `update`, so the paired predict/update sees identical indices).
    indices: [u64; HP_MAX_TABLES],
    last_pred: bool,
    /// Per-branch pure contexts captured by the pipelined front end
    /// ([`HashedPerceptron::plan_record`]), one row per in-flight
    /// branch. The front end advances the architectural history itself
    /// (legal because every index input evolves purely from
    /// `(pc, outcome)`), so the context must be snapshotted here before
    /// the history moves past the branch.
    plan_ctxs: Vec<SumCtx>,
    /// Planned weight-table indices, one `plan_stride`-wide row per
    /// in-flight branch, allocated once at construction.
    plans: Vec<u64>,
    plan_stride: usize,
    pipeline_depth: usize,
}

impl HashedPerceptron {
    /// Builds a hashed perceptron.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`PerceptronConfig::validate`].
    // bp-lint: allow-item(hot-path-alloc, "table construction is cold; steady-state predict/update is allocation-free (tests/hotpath_allocations.rs)")
    pub fn new(config: PerceptronConfig) -> Self {
        config.validate();
        let max_segment = config.segments.iter().copied().max().unwrap_or(1);
        let capacity = (max_segment + 1).next_power_of_two().max(1024);
        let mut history = HistoryState::new(capacity, config.path_bits);
        let folds = config
            .segments
            .iter()
            .map(|&len| (len > 0).then(|| history.add_fold(len, config.log_entries)))
            .collect();
        let entries = 1usize << config.log_entries;
        let plan_stride = config.segments.len();
        HashedPerceptron {
            tables: CounterBank::new(config.segments.len(), entries, config.weight_bits),
            folds,
            plan_ctxs: vec![SumCtx::default(); MAX_PIPELINE_DEPTH],
            plans: vec![0u64; MAX_PIPELINE_DEPTH * plan_stride],
            plan_stride,
            pipeline_depth: DEFAULT_PIPELINE_DEPTH,
            history,
            imli: config.imli.as_ref().map(ImliState::new),
            threshold: AdaptiveThreshold::new(config.threshold_init, config.threshold_max),
            lookup: None,
            indices: [0; HP_MAX_TABLES],
            last_pred: false,
            config,
        }
    }

    /// Constructs the base configuration.
    pub fn base() -> Self {
        Self::new(PerceptronConfig::base())
    }

    /// Constructs the IMLI-augmented configuration.
    pub fn with_imli() -> Self {
        Self::new(PerceptronConfig::imli())
    }

    /// The active configuration.
    pub fn config(&self) -> &PerceptronConfig {
        &self.config
    }

    /// Read-only access to the embedded IMLI state, when configured.
    pub fn imli(&self) -> Option<&ImliState> {
        self.imli.as_ref()
    }

    /// Index of weight table `i` against an explicit history view —
    /// always the architectural [`HashedPerceptron::history`]: the
    /// scalar path reads it at predict time, the pipelined front end at
    /// plan time (before the commit loop trains, which the purity
    /// invariant makes order-equivalent).
    #[inline]
    fn table_index(&self, hist: &HistoryState, i: usize, pc: u64) -> u64 {
        let mut v = pc_bits(pc).wrapping_mul(0x9E37_79B9) ^ ((i as u64) << 55);
        if let Some(fold) = self.folds[i] {
            v ^= mix64(u64::from(hist.fold(fold)) ^ ((i as u64) << 33));
            v ^= hist.path() & 0x1F;
        }
        v
    }

    /// Front-end pass for one in-flight branch: snapshots the pure
    /// context, computes every weight index into row `row` of the plan
    /// scratch, and advances the architectural index inputs past the
    /// record. Advancing the real state here (instead of replaying a
    /// shadow copy) is what the purity invariant buys: the fold work
    /// runs **once** per branch, same as the scalar drive, just earlier
    /// — [`HashedPerceptron::train_planned`] never touches an index
    /// input.
    ///
    /// Deliberately issues **no** prefetches: the ~12 KB weight bank is
    /// L1-resident, where the one-branch lookahead hint
    /// ([`ConditionalPredictor::prefetch`]) already restricts itself to
    /// the single exact PC-indexed row — per-row plan prefetches were
    /// measured as pure front-end overhead here.
    #[inline]
    fn plan_record(&mut self, row: usize, record: &BranchRecord) {
        if record.is_conditional() {
            let ctx = self.make_ctx(record.pc);
            let base = row * self.plan_stride;
            for i in 0..self.plan_stride {
                self.plans[base + i] = self.table_index(&self.history, i, record.pc);
            }
            self.plan_ctxs[row] = ctx;
            self.advance_conditional(record);
        } else {
            self.advance_nonconditional(record);
        }
    }

    /// Advances every index input past a conditional record — the pure
    /// half of [`ConditionalPredictor::update`].
    #[inline]
    fn advance_conditional(&mut self, record: &BranchRecord) {
        if let Some(imli) = &mut self.imli {
            imli.observe(record);
        }
        self.history.push(record.taken, record.pc);
    }

    /// Advances every index input past a non-conditional record — the
    /// whole of [`ConditionalPredictor::notify_nonconditional`].
    #[inline]
    fn advance_nonconditional(&mut self, record: &BranchRecord) {
        if let Some(imli) = &mut self.imli {
            imli.observe(record);
        }
        self.history.push_path_only(record.pc);
    }

    /// The prediction-dependent half of [`ConditionalPredictor::update`]:
    /// consumes the stashed lookup and trains the weight tables and IMLI
    /// counters through the indices the paired prediction actually read.
    /// Never touches an index input, so the pipelined commit loop can
    /// run it after the front end has advanced the history.
    #[inline]
    fn train_planned(&mut self, record: &BranchRecord) {
        // bp-lint: allow(panic-surface, "CBP protocol contract: update() without a pending predict() is caller error, not data-dependent")
        let (ctx, sum) = self.lookup.take().expect("update without pending predict");
        let taken = record.taken;
        let mispredicted = self.last_pred != taken;
        let sum_abs = sum.abs();
        if self.threshold.should_update(sum_abs, mispredicted) {
            // Train through the indices stashed by the paired predict:
            // they are the rows the prediction actually read.
            let n = self.tables.tables();
            self.tables.train_all(&self.indices[..n], taken);
            if let Some(imli) = &mut self.imli {
                imli.train(&ctx, taken);
            }
        }
        self.threshold.adapt(sum_abs, mispredicted);
    }
}

impl HashedPerceptron {
    /// The shared prediction path behind both [`predict`] and
    /// [`predict_attributed`] — one flow, so they can never diverge.
    ///
    /// [`predict`]: ConditionalPredictor::predict
    /// [`predict_attributed`]: ConditionalPredictor::predict_attributed
    #[inline]
    fn make_ctx(&self, pc: u64) -> SumCtx {
        let mut ctx = SumCtx {
            pc,
            ghist: self.history.global().low_bits(64),
            path: self.history.path(),
            ..SumCtx::default()
        };
        if let Some(imli) = &self.imli {
            imli.fill_ctx(&mut ctx);
        }
        ctx
    }

    #[inline]
    fn predict_full(&mut self, pc: u64) -> (bool, PredictionAttribution) {
        let ctx = self.make_ctx(pc);
        // Two-phase lookup: the index phase (hash mixing + fold reads)
        // fills the stashed index buffer, the gather phase pulls the
        // weights into a flat `i8` buffer, and the vector-friendly
        // [`sum_centered`] kernel reduces it — the exact
        // Σ (2w+1) the per-table `read` loop used to accumulate.
        // Measured head-to-head, the separate phases beat fusing the
        // index and gather into one loop here (with 8 independent
        // hashes the split form schedules all the table loads before
        // the reduction needs them), and the plain kernel call beats
        // the lane-padded variant at this width — 8 values fit one
        // unrolled scalar remainder.
        let n = self.tables.tables();
        for i in 0..n {
            self.indices[i] = self.table_index(&self.history, i, pc);
        }
        self.finish_predict(ctx, n)
    }

    /// Back-end half of the pipelined drive: loads the context and
    /// indices planned by [`HashedPerceptron::plan_record`] into the
    /// stash (so [`HashedPerceptron::train_planned`] trains through them
    /// verbatim) and finishes the prediction exactly like
    /// [`HashedPerceptron::predict_full`]. The architectural history has
    /// already run ahead, so the plan-time snapshot is the *only* source
    /// of the pure context here.
    fn predict_planned(&mut self, row: usize) -> (bool, PredictionAttribution) {
        let ctx = self.plan_ctxs[row];
        let n = self.tables.tables();
        let base = row * self.plan_stride;
        self.indices[..n].copy_from_slice(&self.plans[base..base + n]);
        self.finish_predict(ctx, n)
    }

    /// Shared prediction tail over the stashed indices: gather, reduce,
    /// IMLI addends, attribution, and the `lookup` stash for `update`.
    #[inline]
    fn finish_predict(&mut self, ctx: SumCtx, n: usize) -> (bool, PredictionAttribution) {
        let mut values = [0i8; HP_MAX_TABLES];
        self.tables.gather(&self.indices[..n], &mut values[..n]);
        let mut sum = sum_centered(&values[..n]);
        if let Some(imli) = &self.imli {
            sum += imli.read(&ctx);
        }
        self.lookup = Some((ctx, sum));
        self.last_pred = sum >= 0;
        (
            self.last_pred,
            PredictionAttribution::new(
                ProviderComponent::Neural,
                None,
                ConfidenceBucket::from_sum(sum.abs(), self.threshold.theta()),
            ),
        )
    }
}

impl ConditionalPredictor for HashedPerceptron {
    fn predict(&mut self, pc: u64) -> bool {
        self.predict_full(pc).0
    }

    fn predict_attributed(&mut self, pc: u64) -> (bool, PredictionAttribution) {
        self.predict_full(pc)
    }

    fn update(&mut self, record: &BranchRecord) {
        // The scalar protocol is literally train-then-advance — the
        // same two halves the pipelined drive runs at commit and plan
        // time respectively, so the two drives cannot diverge.
        self.train_planned(record);
        self.advance_conditional(record);
    }

    fn flush_history(&mut self) {
        self.history.flush();
        if let Some(imli) = &mut self.imli {
            imli.flush_history();
        }
    }

    fn notify_nonconditional(&mut self, record: &BranchRecord) {
        self.advance_nonconditional(record);
    }

    fn run_block(&mut self, block: &[BranchRecord], stats: &mut PredictorStats) {
        // Front end: plan + advance every record (non-conditionals are
        // fully handled there). Commit: gather + train conditionals
        // only, in trace order.
        for chunk in block.chunks(self.pipeline_depth) {
            for (row, record) in chunk.iter().enumerate() {
                self.plan_record(row, record);
            }
            for (row, record) in chunk.iter().enumerate() {
                if record.is_conditional() {
                    let (pred, _) = self.predict_planned(row);
                    stats.record(pred == record.taken);
                    self.train_planned(record);
                }
            }
        }
    }

    fn run_block_frontend(&mut self, block: &[BranchRecord]) {
        for chunk in block.chunks(self.pipeline_depth) {
            for (row, record) in chunk.iter().enumerate() {
                self.plan_record(row, record);
            }
        }
    }

    fn set_pipeline_depth(&mut self, depth: usize) {
        self.pipeline_depth = clamp_pipeline_depth(depth);
    }

    fn prefetch(&self, pc: u64) {
        // Pure hint, issued one branch ahead by the simulator. Table 0
        // is segment-0 (PC-only) in every stock configuration, so its
        // row is exact; the remaining rows sit in an L1/L2-resident
        // ~12 KB bank where extra prefetches were measured as pure
        // overhead.
        self.tables
            .prefetch(0, self.table_index(&self.history, 0, pc));
    }

    fn name(&self) -> &str {
        &self.config.name
    }
}

impl StorageBudget for HashedPerceptron {
    // bp-lint: allow-item(hot-path-alloc, "storage accounting is reporting-time only, never on the predict/update path")
    fn storage_items(&self) -> Vec<StorageItem> {
        let mut items: Vec<StorageItem> = (0..self.tables.tables())
            .map(|i| {
                StorageItem::new(
                    format!("hp/weights[{i}] (h={})", self.config.segments[i]),
                    self.tables.table_storage_bits(),
                )
            })
            .collect();
        if let Some(imli) = &self.imli {
            items.extend(imli.storage_items());
        }
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(p: &mut HashedPerceptron, pc: u64, taken: bool) -> bool {
        let pred = p.predict(pc);
        p.update(&BranchRecord::conditional(pc, pc + 0x40, taken));
        pred
    }

    #[test]
    fn learns_biased_and_periodic_branches() {
        let mut p = HashedPerceptron::base();
        let mut correct = 0u32;
        for i in 0..6000u32 {
            let taken = i % 7 < 3;
            if drive(&mut p, 0x400, taken) == taken && i > 3000 {
                correct += 1;
            }
        }
        let acc = f64::from(correct) / 3000.0;
        assert!(acc > 0.95, "period-7 accuracy {acc:.3}");
    }

    #[test]
    fn imli_variant_fixes_same_iteration_nest() {
        // The same regime as the GEHL test: per-iteration pattern with
        // drift, variable trips, noisy body.
        let run = |mut p: HashedPerceptron| -> f64 {
            let body = 0x4008u64;
            let noise_pc = 0x400cu64;
            let back_pc = 0x4010u64;
            let mut rng = 0xFEEDu64;
            let mut step = move || {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                rng
            };
            let mut pattern: Vec<bool> = (0..32).map(|_| step() & 1 == 1).collect();
            let mut correct = 0u64;
            let mut total = 0u64;
            for n in 0..500u64 {
                let trips = 8 + (step() % 24) as u32;
                for m in 0..trips {
                    let taken = pattern[m as usize];
                    let pred = p.predict(body);
                    if n > 150 {
                        total += 1;
                        correct += u64::from(pred == taken);
                    }
                    p.update(&BranchRecord::conditional(body, body + 0x40, taken));
                    let noise = step() & 1 == 1;
                    let _ = p.predict(noise_pc);
                    p.update(&BranchRecord::conditional(noise_pc, noise_pc + 0x40, noise));
                    let _ = p.predict(back_pc);
                    p.update(&BranchRecord::conditional(back_pc, 0x4000, m + 1 < trips));
                }
                let flip = (step() % 32) as usize;
                pattern[flip] = !pattern[flip];
            }
            correct as f64 / total as f64
        };
        let base = run(HashedPerceptron::base());
        let with_imli = run(HashedPerceptron::with_imli());
        assert!(
            with_imli > base + 0.02,
            "IMLI must also help the perceptron host: {with_imli:.3} vs {base:.3}"
        );
        assert!(with_imli > 0.85, "HP+IMLI accuracy {with_imli:.3}");
    }

    #[test]
    fn storage_and_names() {
        let base = HashedPerceptron::base();
        let with_imli = HashedPerceptron::with_imli();
        assert_eq!(base.name(), "HP");
        assert_eq!(with_imli.name(), "HP+IMLI");
        assert_eq!(base.storage_bits(), 8 * 2048 * 6);
        assert_eq!(
            with_imli.storage_bits() - base.storage_bits(),
            10 + 3072 + 1536 + 1024 + 16
        );
        assert!(base.imli().is_none() && with_imli.imli().is_some());
    }

    #[test]
    #[should_panic(expected = "update without pending predict")]
    fn update_requires_predict() {
        let mut p = HashedPerceptron::base();
        p.update(&BranchRecord::conditional(0x40, 0x80, true));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_segments() {
        let _ = HashedPerceptron::new(PerceptronConfig {
            segments: vec![0, 8, 4],
            ..PerceptronConfig::base()
        });
    }

    #[test]
    fn nonconditional_notifications_are_safe() {
        let mut p = HashedPerceptron::with_imli();
        p.notify_nonconditional(&BranchRecord::ret(0x10, 0x20));
        let _ = p.predict(0x44);
        p.update(&BranchRecord::conditional(0x44, 0x20, true));
    }
}
