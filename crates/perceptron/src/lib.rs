//! The hashed perceptron predictor (Tarjan & Skadron, TACO 2005), with
//! IMLI integration.
//!
//! The IMLI paper's §1 claims its components can be added to *any*
//! neural-inspired predictor — it cites the hashed perceptron and SNAP as
//! members of the family alongside GEHL. This crate provides that third
//! host: a classic hashed perceptron (weight tables indexed by hashes of
//! the PC with global-history segments, magnitude-threshold training)
//! whose summation optionally includes the IMLI-SIC and IMLI-OH
//! components, reusing the exact same [`imli::ImliState`] plumbing as the
//! TAGE-GSC and GEHL hosts. The workspace's generality experiment
//! (`exp_generality`) shows the same benchmarks benefitting on all three
//! hosts.

#![warn(missing_docs)]

use bp_components::{
    mix64, pc_bits, AdaptiveThreshold, ConditionalPredictor, ConfidenceBucket,
    PredictionAttribution, ProviderComponent, SignedCounterTable, StorageBudget, StorageItem,
    SumCtx,
};
use bp_history::HistoryState;
use bp_trace::BranchRecord;
use imli::{ImliConfig, ImliState};

/// Configuration of a [`HashedPerceptron`].
#[derive(Debug, Clone)]
pub struct PerceptronConfig {
    /// log2 of each weight table's entry count.
    pub log_entries: usize,
    /// Weight width in bits.
    pub weight_bits: usize,
    /// Global-history segment lengths, one weight table per entry;
    /// length 0 means a PC-only (bias) table.
    pub segments: Vec<usize>,
    /// Path history bits.
    pub path_bits: usize,
    /// IMLI components, if any.
    pub imli: Option<ImliConfig>,
    /// Initial / maximum adaptive training threshold.
    pub threshold_init: i32,
    /// Threshold ceiling.
    pub threshold_max: i32,
    /// Display name.
    pub name: String,
}

impl PerceptronConfig {
    /// A ~96 Kbit hashed perceptron: 8 tables of 2K 6-bit weights over
    /// history segments 0..256.
    pub fn base() -> Self {
        PerceptronConfig {
            log_entries: 11,
            weight_bits: 6,
            segments: vec![0, 4, 9, 17, 33, 64, 128, 256],
            path_bits: 16,
            imli: None,
            threshold_init: 14,
            threshold_max: 255,
            name: "HP".to_owned(),
        }
    }

    /// The base perceptron plus both IMLI components (the paper's "any
    /// neural-inspired predictor" claim).
    pub fn imli() -> Self {
        PerceptronConfig {
            imli: Some(ImliConfig::default()),
            name: "HP+IMLI".to_owned(),
            ..Self::base()
        }
    }

    /// Validates the geometry.
    ///
    /// # Panics
    ///
    /// Panics on an empty segment list, out-of-range widths, or
    /// non-increasing non-zero segments.
    pub fn validate(&self) {
        assert!(!self.segments.is_empty(), "need at least one table");
        assert!(
            (6..=16).contains(&self.log_entries),
            "log_entries out of range"
        );
        assert!(
            (2..=7).contains(&self.weight_bits),
            "weight width out of range"
        );
        for w in self.segments.windows(2) {
            assert!(w[0] < w[1], "segments must be strictly increasing");
        }
        if let Some(imli) = &self.imli {
            imli.validate();
        }
    }
}

/// The hashed perceptron predictor. Each weight table is indexed with a
/// hash of the PC and one *segment* of the global history; the
/// prediction is the sign of the summed weights; training is gated by
/// the adaptive magnitude threshold.
pub struct HashedPerceptron {
    config: PerceptronConfig,
    tables: Vec<SignedCounterTable>,
    folds: Vec<Option<usize>>,
    history: HistoryState,
    imli: Option<ImliState>,
    threshold: AdaptiveThreshold,
    lookup: Option<(SumCtx, i32)>,
    last_pred: bool,
}

impl HashedPerceptron {
    /// Builds a hashed perceptron.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`PerceptronConfig::validate`].
    pub fn new(config: PerceptronConfig) -> Self {
        config.validate();
        let max_segment = config.segments.iter().copied().max().unwrap_or(1);
        let capacity = (max_segment + 1).next_power_of_two().max(1024);
        let mut history = HistoryState::new(capacity, config.path_bits);
        let folds = config
            .segments
            .iter()
            .map(|&len| (len > 0).then(|| history.add_fold(len, config.log_entries)))
            .collect();
        let entries = 1usize << config.log_entries;
        HashedPerceptron {
            tables: config
                .segments
                .iter()
                .map(|_| SignedCounterTable::new(entries, config.weight_bits))
                .collect(),
            folds,
            history,
            imli: config.imli.as_ref().map(ImliState::new),
            threshold: AdaptiveThreshold::new(config.threshold_init, config.threshold_max),
            lookup: None,
            last_pred: false,
            config,
        }
    }

    /// Constructs the base configuration.
    pub fn base() -> Self {
        Self::new(PerceptronConfig::base())
    }

    /// Constructs the IMLI-augmented configuration.
    pub fn with_imli() -> Self {
        Self::new(PerceptronConfig::imli())
    }

    /// The active configuration.
    pub fn config(&self) -> &PerceptronConfig {
        &self.config
    }

    /// Read-only access to the embedded IMLI state, when configured.
    pub fn imli(&self) -> Option<&ImliState> {
        self.imli.as_ref()
    }

    #[inline]
    fn table_index(&self, i: usize, pc: u64) -> u64 {
        let mut v = pc_bits(pc).wrapping_mul(0x9E37_79B9) ^ ((i as u64) << 55);
        if let Some(fold) = self.folds[i] {
            v ^= mix64(u64::from(self.history.fold(fold)) ^ ((i as u64) << 33));
            v ^= self.history.path() & 0x1F;
        }
        v
    }
}

impl HashedPerceptron {
    /// The shared prediction path behind both [`predict`] and
    /// [`predict_attributed`] — one flow, so they can never diverge.
    ///
    /// [`predict`]: ConditionalPredictor::predict
    /// [`predict_attributed`]: ConditionalPredictor::predict_attributed
    #[inline]
    fn predict_full(&mut self, pc: u64) -> (bool, PredictionAttribution) {
        let mut ctx = SumCtx {
            pc,
            ghist: self.history.global().low_bits(64),
            path: self.history.path(),
            ..SumCtx::default()
        };
        if let Some(imli) = &self.imli {
            imli.fill_ctx(&mut ctx);
        }
        let mut sum = 0i32;
        for i in 0..self.tables.len() {
            sum += self.tables[i].read(self.table_index(i, pc));
        }
        if let Some(imli) = &self.imli {
            sum += imli.read(&ctx);
        }
        self.lookup = Some((ctx, sum));
        self.last_pred = sum >= 0;
        (
            self.last_pred,
            PredictionAttribution::new(
                ProviderComponent::Neural,
                None,
                ConfidenceBucket::from_sum(sum.abs(), self.threshold.theta()),
            ),
        )
    }
}

impl ConditionalPredictor for HashedPerceptron {
    fn predict(&mut self, pc: u64) -> bool {
        self.predict_full(pc).0
    }

    fn predict_attributed(&mut self, pc: u64) -> (bool, PredictionAttribution) {
        self.predict_full(pc)
    }

    fn update(&mut self, record: &BranchRecord) {
        let (ctx, sum) = self.lookup.take().expect("update without pending predict");
        let taken = record.taken;
        let mispredicted = self.last_pred != taken;
        let sum_abs = sum.abs();
        if self.threshold.should_update(sum_abs, mispredicted) {
            for i in 0..self.tables.len() {
                let idx = self.table_index(i, record.pc);
                self.tables[i].train(idx, taken);
            }
            if let Some(imli) = &mut self.imli {
                imli.train(&ctx, taken);
            }
        }
        self.threshold.adapt(sum_abs, mispredicted);
        if let Some(imli) = &mut self.imli {
            imli.observe(record);
        }
        self.history.push(taken, record.pc);
    }

    fn notify_nonconditional(&mut self, record: &BranchRecord) {
        if let Some(imli) = &mut self.imli {
            imli.observe(record);
        }
        self.history.push_path_only(record.pc);
    }

    fn name(&self) -> &str {
        &self.config.name
    }
}

impl StorageBudget for HashedPerceptron {
    fn storage_items(&self) -> Vec<StorageItem> {
        let mut items: Vec<StorageItem> = self
            .tables
            .iter()
            .enumerate()
            .map(|(i, t)| {
                StorageItem::new(
                    format!("hp/weights[{i}] (h={})", self.config.segments[i]),
                    t.storage_bits(),
                )
            })
            .collect();
        if let Some(imli) = &self.imli {
            items.extend(imli.storage_items());
        }
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(p: &mut HashedPerceptron, pc: u64, taken: bool) -> bool {
        let pred = p.predict(pc);
        p.update(&BranchRecord::conditional(pc, pc + 0x40, taken));
        pred
    }

    #[test]
    fn learns_biased_and_periodic_branches() {
        let mut p = HashedPerceptron::base();
        let mut correct = 0u32;
        for i in 0..6000u32 {
            let taken = i % 7 < 3;
            if drive(&mut p, 0x400, taken) == taken && i > 3000 {
                correct += 1;
            }
        }
        let acc = f64::from(correct) / 3000.0;
        assert!(acc > 0.95, "period-7 accuracy {acc:.3}");
    }

    #[test]
    fn imli_variant_fixes_same_iteration_nest() {
        // The same regime as the GEHL test: per-iteration pattern with
        // drift, variable trips, noisy body.
        let run = |mut p: HashedPerceptron| -> f64 {
            let body = 0x4008u64;
            let noise_pc = 0x400cu64;
            let back_pc = 0x4010u64;
            let mut rng = 0xFEEDu64;
            let mut step = move || {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                rng
            };
            let mut pattern: Vec<bool> = (0..32).map(|_| step() & 1 == 1).collect();
            let mut correct = 0u64;
            let mut total = 0u64;
            for n in 0..500u64 {
                let trips = 8 + (step() % 24) as u32;
                for m in 0..trips {
                    let taken = pattern[m as usize];
                    let pred = p.predict(body);
                    if n > 150 {
                        total += 1;
                        correct += u64::from(pred == taken);
                    }
                    p.update(&BranchRecord::conditional(body, body + 0x40, taken));
                    let noise = step() & 1 == 1;
                    let _ = p.predict(noise_pc);
                    p.update(&BranchRecord::conditional(noise_pc, noise_pc + 0x40, noise));
                    let _ = p.predict(back_pc);
                    p.update(&BranchRecord::conditional(back_pc, 0x4000, m + 1 < trips));
                }
                let flip = (step() % 32) as usize;
                pattern[flip] = !pattern[flip];
            }
            correct as f64 / total as f64
        };
        let base = run(HashedPerceptron::base());
        let with_imli = run(HashedPerceptron::with_imli());
        assert!(
            with_imli > base + 0.02,
            "IMLI must also help the perceptron host: {with_imli:.3} vs {base:.3}"
        );
        assert!(with_imli > 0.85, "HP+IMLI accuracy {with_imli:.3}");
    }

    #[test]
    fn storage_and_names() {
        let base = HashedPerceptron::base();
        let with_imli = HashedPerceptron::with_imli();
        assert_eq!(base.name(), "HP");
        assert_eq!(with_imli.name(), "HP+IMLI");
        assert_eq!(base.storage_bits(), 8 * 2048 * 6);
        assert_eq!(
            with_imli.storage_bits() - base.storage_bits(),
            10 + 3072 + 1536 + 1024 + 16
        );
        assert!(base.imli().is_none() && with_imli.imli().is_some());
    }

    #[test]
    #[should_panic(expected = "update without pending predict")]
    fn update_requires_predict() {
        let mut p = HashedPerceptron::base();
        p.update(&BranchRecord::conditional(0x40, 0x80, true));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_segments() {
        let _ = HashedPerceptron::new(PerceptronConfig {
            segments: vec![0, 8, 4],
            ..PerceptronConfig::base()
        });
    }

    #[test]
    fn nonconditional_notifications_are_safe() {
        let mut p = HashedPerceptron::with_imli();
        p.notify_nonconditional(&BranchRecord::ret(0x10, 0x20));
        let _ = p.predict(0x44);
        p.update(&BranchRecord::conditional(0x44, 0x20, true));
    }
}
