//! Behavioural tests of the statistical corrector and the composed
//! TAGE-SC predictors through the public API.

use bp_components::{ConditionalPredictor, StorageBudget};
use bp_tage::{ScConfig, StatisticalCorrector, TageSc, TageScConfig};
use bp_trace::BranchRecord;
use imli::ImliConfig;

/// Drives one conditional branch through a composed predictor.
fn drive(p: &mut TageSc, pc: u64, taken: bool) -> bool {
    let pred = p.predict(pc);
    p.update(&BranchRecord::conditional(pc, pc + 0x40, taken));
    pred
}

/// The corrector must not *hurt* an accurate TAGE: on an easy biased
/// branch, the composed predictor converges to near-zero mispredictions.
#[test]
fn corrector_does_not_destroy_easy_branches() {
    let mut p = TageSc::tage_gsc();
    let mut wrong = 0;
    for i in 0..3000 {
        let pred = drive(&mut p, 0x40, true);
        if i > 500 && !pred {
            wrong += 1;
        }
    }
    assert_eq!(wrong, 0, "easy always-taken branch must be perfect");
}

/// The corrector reverts a statistically biased TAGE: an 85 %-taken
/// branch whose not-taken instances follow a global-history pattern is
/// better than bimodal for the corrector's GEHL tables.
#[test]
fn composed_predictor_beats_main_on_statistical_bias() {
    let mut p = TageSc::tage_gsc();
    let mut correct = 0u32;
    let total = 8000u32;
    for i in 0..total {
        let taken = (i % 16) != 3 && (i % 16) != 9;
        let pred = drive(&mut p, 0x3030, taken);
        if i >= total / 2 {
            correct += u32::from(pred == taken);
        }
    }
    let acc = f64::from(correct) / f64::from(total / 2);
    assert!(acc > 0.97, "period-16 pattern accuracy {acc:.3}");
}

/// IMLI tables inside the SC leave non-loop code untouched: a workload
/// with no backward branches keeps `imli_count` at 0, so the IMLI-SIC
/// table degenerates to one more bias table and accuracy is unchanged
/// within noise.
#[test]
fn imli_is_neutral_without_loops() {
    let run = |mut p: TageSc| -> u32 {
        let mut wrong = 0;
        for i in 0..6000u32 {
            // Forward branches only.
            let pc = 0x100 + u64::from(i % 7) * 8;
            let taken = (i / 7) % 3 == 0;
            let pred = p.predict(pc);
            if i > 1000 && pred != taken {
                wrong += 1;
            }
            p.update(&BranchRecord::conditional(pc, pc + 0x40, taken));
        }
        wrong
    };
    let base_wrong = run(TageSc::tage_gsc());
    let imli_wrong = run(TageSc::tage_gsc_imli());
    let delta = (i64::from(imli_wrong) - i64::from(base_wrong)).abs();
    assert!(
        delta < 60,
        "IMLI must be ~neutral without loops: {base_wrong} vs {imli_wrong}"
    );
}

/// The raw corrector follows its threshold discipline: after heavy
/// training on consistent data, a fresh in-between branch does not
/// perturb trained state (regression guard for the predict/update
/// pairing).
#[test]
fn corrector_lookup_update_pairing_is_strict() {
    let mut sc = StatisticalCorrector::new(ScConfig::default());
    for _ in 0..100 {
        let l = sc.predict(0x40, true, false, 0, 0);
        let _ = l.pred; // use the lookup
        sc.update(true);
        sc.observe(&BranchRecord::conditional(0x40, 0x80, true));
    }
    let trained = sc.predict(0x40, true, false, 0, 0);
    assert!(trained.pred, "heavily trained taken branch");
    sc.update(true);
}

/// Configuration plumbing: `with_imli` swaps the IMLI geometry and the
/// display name.
#[test]
fn with_imli_overrides_config() {
    let config = TageScConfig::gsc_imli().with_imli(ImliConfig::delayed_update(63), "renamed");
    assert_eq!(config.name, "renamed");
    assert_eq!(
        config
            .sc
            .imli
            .expect("imli configured")
            .outer_history_update_delay,
        63
    );
    let p = TageSc::new(config);
    assert_eq!(p.name(), "renamed");
}

/// Storage accounting of the composed predictor equals the sum of its
/// breakdown parts.
#[test]
fn budget_breakdown_sums_to_total() {
    for p in [
        TageSc::tage_gsc(),
        TageSc::tage_gsc_imli(),
        TageSc::tage_sc_l(),
        TageSc::tage_sc_l_imli(),
    ] {
        let parts: u64 = p.budget_breakdown().iter().map(|(_, b)| b).sum();
        assert_eq!(parts, p.storage_bits(), "{}", p.name());
    }
}
