//! TAGE-family predictors with statistical corrector.
//!
//! This crate provides the paper's host predictors from the TAGE family
//! (§3.2.1):
//!
//! * [`Tage`] — the tagged-geometric-history-length predictor proper,
//! * [`StatisticalCorrector`] — the neural corrector stage (GSC), with
//!   optional IMLI components and optional local-history components,
//! * [`TageSc`] — the composed predictor, with named configurations:
//!   [`TageGsc`] (the paper's global-history reference),
//!   [`TageGscImli`] (+ IMLI), [`TageScL`] (+ local history and loop
//!   predictor), and [`TageScLImli`] (+ both — the paper's §5 "record"
//!   configuration).

#![warn(missing_docs)]

mod composed;
mod sc;
mod tage;

pub use composed::{TageSc, TageScConfig};
pub use sc::{LocalScConfig, ScConfig, StatisticalCorrector};
pub use tage::{Tage, TageConfig, TageLookup, TagePlan, MAX_TAGE_TABLES};

/// The paper's TAGE-GSC reference predictor (TAGE + global-history
/// statistical corrector, no local history, no loop predictor, no IMLI).
pub type TageGsc = TageSc;

/// Builds the four named configurations of Tables 1 and 2.
impl TageSc {
    /// TAGE-GSC: the base global-history predictor (paper: 228 Kbits,
    /// 2.473 MPKI on CBP4).
    pub fn tage_gsc() -> TageSc {
        TageSc::new(TageScConfig::gsc())
    }

    /// TAGE-GSC + IMLI ("+I" in Table 1; paper: 234 Kbits).
    pub fn tage_gsc_imli() -> TageSc {
        TageSc::new(TageScConfig::gsc_imli())
    }

    /// TAGE-GSC + IMLI-SIC only (the intermediate bar of Figures 8-9).
    pub fn tage_gsc_sic() -> TageSc {
        TageSc::new(TageScConfig::gsc_sic_only())
    }

    /// TAGE-SC-L: local history components and loop predictor enabled
    /// ("+L"; paper: 256 Kbits).
    pub fn tage_sc_l() -> TageSc {
        TageSc::new(TageScConfig::sc_l())
    }

    /// TAGE-SC-L + IMLI ("+I+L" — the §5 record configuration;
    /// paper: 261 Kbits, 2.226 MPKI on CBP4).
    pub fn tage_sc_l_imli() -> TageSc {
        TageSc::new(TageScConfig::sc_l_imli())
    }
}

/// TAGE-GSC augmented with both IMLI components (paper Figure 5).
pub struct TageGscImli;

impl TageGscImli {
    /// Constructs the default TAGE-GSC+IMLI predictor.
    pub fn default_config() -> TageSc {
        TageSc::tage_gsc_imli()
    }
}

/// TAGE-SC-L (the CBP4 winner configuration class: adds local history
/// and the loop predictor to TAGE-GSC).
pub struct TageScL;

impl TageScL {
    /// Constructs the default TAGE-SC-L predictor.
    pub fn default_config() -> TageSc {
        TageSc::tage_sc_l()
    }
}

/// TAGE-SC-L + IMLI: the paper's record-setting §5 configuration.
pub struct TageScLImli;

impl TageScLImli {
    /// Constructs the default TAGE-SC-L+IMLI predictor.
    pub fn default_config() -> TageSc {
        TageSc::tage_sc_l_imli()
    }
}
