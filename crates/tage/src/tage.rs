//! The TAGE predictor (Seznec & Michaud 2006; Seznec 2011).

use bp_components::{
    pc_bits, BimodalTable, ConfigError, ConfigValue, SaturatingCounter, StorageItem,
};
use bp_history::HistoryState;

/// Geometry of a [`Tage`] predictor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TageConfig {
    /// log2 of the bimodal base table entries.
    pub base_log_entries: usize,
    /// log2 of each tagged table's entry count.
    pub tagged_log_entries: usize,
    /// Tag width per tagged table (also fixes the table count).
    pub tag_bits: Vec<usize>,
    /// Shortest and longest history lengths of the geometric series.
    pub min_history: usize,
    /// Longest history length.
    pub max_history: usize,
    /// Width of the prediction counters in tagged entries.
    pub counter_bits: usize,
    /// Width of the usefulness counters.
    pub useful_bits: usize,
    /// Path history bits mixed into indices.
    pub path_bits: usize,
    /// Period (in updates) of the graceful usefulness reset.
    pub reset_period: u64,
}

impl Default for TageConfig {
    /// A ~208 Kbit TAGE comparable to the TAGE part of the paper's
    /// 228 Kbit TAGE-GSC: 12 tagged tables of 1K entries, geometric
    /// history lengths 4→640, 8-15 bit tags, 8K-entry shared-hysteresis
    /// bimodal base.
    // bp-lint: allow-item(hot-path-alloc, "config construction is cold; the per-branch path never builds a TageConfig")
    fn default() -> Self {
        TageConfig {
            base_log_entries: 13,
            tagged_log_entries: 10,
            tag_bits: vec![8, 8, 9, 10, 10, 11, 11, 12, 12, 13, 14, 15],
            min_history: 4,
            max_history: 640,
            counter_bits: 3,
            useful_bits: 2,
            path_bits: 16,
            reset_period: 1 << 18,
        }
    }
}

/// Compile-time bound on the number of tagged tables.
///
/// [`TageLookup`] carries per-table indices and tags in fixed-capacity
/// inline arrays sized by this constant, so the per-branch lookup is a
/// plain `Copy` value — no heap allocation anywhere on the
/// predict/update path. 16 comfortably covers every published TAGE
/// geometry (the paper's is 12 tables; CBP winners use 12-15).
pub const MAX_TAGE_TABLES: usize = 16;

impl TageConfig {
    /// Number of tagged tables.
    pub fn num_tables(&self) -> usize {
        self.tag_bits.len()
    }

    /// The geometric history length of tagged table `i`
    /// (`L(i) = min * (max/min)^(i/(n-1))`, the TAGE series).
    pub fn history_length(&self, i: usize) -> usize {
        let n = self.num_tables();
        if n == 1 {
            return self.max_history;
        }
        let ratio =
            (self.max_history as f64 / self.min_history as f64).powf(i as f64 / (n as f64 - 1.0));
        ((self.min_history as f64 * ratio) + 0.5) as usize
    }

    /// Validates the geometry.
    ///
    /// # Panics
    ///
    /// Panics on an empty table list, non-increasing history bounds, or
    /// out-of-range widths. The non-panicking twin is
    /// [`TageConfig::check`].
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            // bp-lint: allow(panic-surface, "documented legacy panicking API; the validate-then-build path uses the non-panicking check()")
            panic!("{e}");
        }
    }

    /// Checks the geometry, returning the first violation instead of
    /// panicking.
    pub fn check(&self) -> Result<(), ConfigError> {
        if self.tag_bits.is_empty() {
            return Err("at least one tagged table".into());
        }
        if self.tag_bits.len() > MAX_TAGE_TABLES {
            // bp-lint: allow(hot-path-alloc, "validation error path, runs once per config, never per branch")
            return Err(format!("at most {MAX_TAGE_TABLES} tagged tables").into());
        }
        if !(2..=24).contains(&self.tagged_log_entries) {
            return Err("tagged_log_entries must be in 2..=24".into());
        }
        if !(2..=24).contains(&self.base_log_entries) {
            return Err("base_log_entries must be in 2..=24".into());
        }
        if !(self.min_history >= 1 && self.max_history > self.min_history) {
            return Err("history bounds must be increasing".into());
        }
        if self.max_history > 65536 {
            return Err("max_history must be at most 65536".into());
        }
        if !self.tag_bits.iter().all(|&t| (4..=16).contains(&t)) {
            return Err("tag widths must be in 4..=16".into());
        }
        if !((2..=5).contains(&self.counter_bits) && (1..=4).contains(&self.useful_bits)) {
            return Err("counter widths out of range".into());
        }
        Ok(())
    }

    /// Exact storage in bits of the built [`Tage`]: the
    /// shared-hysteresis base (`2^b + 2^b/4`), every tagged bank
    /// (`2^t × (counter + useful + tag)`), and the 4-bit
    /// `use_alt_on_na` register — the same itemization as
    /// [`Tage::storage_items`], computed from the configuration alone.
    pub fn storage_bits(&self) -> u64 {
        let base = 1u64 << self.base_log_entries;
        let entries = 1u64 << self.tagged_log_entries;
        let tagged: u64 = self
            .tag_bits
            .iter()
            .map(|&tag| entries * (self.counter_bits + self.useful_bits + tag) as u64)
            .sum();
        base + base / BimodalTable::HYST_SHARE as u64 + tagged + 4
    }

    /// Serializes as a [`ConfigValue`] object.
    pub fn to_value(&self) -> ConfigValue {
        ConfigValue::map()
            .set("base_log_entries", ConfigValue::int(self.base_log_entries))
            .set(
                "tagged_log_entries",
                ConfigValue::int(self.tagged_log_entries),
            )
            .set("tag_bits", ConfigValue::int_list(&self.tag_bits))
            .set("min_history", ConfigValue::int(self.min_history))
            .set("max_history", ConfigValue::int(self.max_history))
            .set("counter_bits", ConfigValue::int(self.counter_bits))
            .set("useful_bits", ConfigValue::int(self.useful_bits))
            .set("path_bits", ConfigValue::int(self.path_bits))
            .set("reset_period", ConfigValue::int(self.reset_period))
    }

    /// Parses from a [`ConfigValue`] object (strict keys).
    pub fn from_value(value: &ConfigValue) -> Result<Self, ConfigError> {
        value.expect_keys(
            "tage config",
            &[
                "base_log_entries",
                "tagged_log_entries",
                "tag_bits",
                "min_history",
                "max_history",
                "counter_bits",
                "useful_bits",
                "path_bits",
                "reset_period",
            ],
        )?;
        Ok(TageConfig {
            base_log_entries: value
                .req("base_log_entries")?
                .as_usize("base_log_entries")?,
            tagged_log_entries: value
                .req("tagged_log_entries")?
                .as_usize("tagged_log_entries")?,
            tag_bits: value.req("tag_bits")?.as_usize_list("tag_bits")?,
            min_history: value.req("min_history")?.as_usize("min_history")?,
            max_history: value.req("max_history")?.as_usize("max_history")?,
            counter_bits: value.req("counter_bits")?.as_usize("counter_bits")?,
            useful_bits: value.req("useful_bits")?.as_usize("useful_bits")?,
            path_bits: value.req("path_bits")?.as_usize("path_bits")?,
            reset_period: value.req("reset_period")?.as_u64("reset_period")?,
        })
    }
}

#[derive(Debug, Clone, Copy)]
struct TaggedEntry {
    ctr: SaturatingCounter,
    tag: u16,
    useful: u8,
}

/// The result of a TAGE lookup, cached between `predict` and `update`.
///
/// A plain `Copy` value: the per-table indices and tags live in
/// fixed-capacity inline arrays (bounded by [`MAX_TAGE_TABLES`]), so
/// taking, caching, and returning a lookup never touches the heap —
/// this runs once per conditional branch.
#[derive(Debug, Clone, Copy)]
pub struct TageLookup {
    /// Per-table computed indices (first `num_tables` slots are live).
    indices: [u32; MAX_TAGE_TABLES],
    /// Per-table computed tags (first `num_tables` slots are live).
    tags: [u16; MAX_TAGE_TABLES],
    /// The matching table providing the prediction (`None` = bimodal).
    provider: Option<usize>,
    /// The alternate provider (next longest match; `None` = bimodal).
    alt: Option<usize>,
    /// Prediction of the provider component.
    provider_pred: bool,
    /// Prediction of the alternate component.
    alt_pred: bool,
    /// The final TAGE prediction.
    pub pred: bool,
    /// True when the provider counter is in a weak state — the confidence
    /// signal exported to the statistical corrector.
    pub low_confidence: bool,
    /// True when the provider entry looks newly allocated.
    weak_newalloc: bool,
    /// True when the final prediction came from the alternate component
    /// (the `use_alt_on_na` policy overrode a weak new allocation).
    alt_used: bool,
}

impl TageLookup {
    /// The matching tagged bank that provided the prediction (`None` =
    /// the bimodal base).
    pub fn provider(&self) -> Option<usize> {
        self.provider
    }

    /// The alternate component: the next-longest matching tagged bank,
    /// or `None` for the bimodal base.
    pub fn alt(&self) -> Option<usize> {
        self.alt
    }

    /// The provider component's own prediction.
    pub fn provider_pred(&self) -> bool {
        self.provider_pred
    }

    /// The alternate component's prediction.
    pub fn alt_pred(&self) -> bool {
        self.alt_pred
    }

    /// Whether the final prediction came from the alternate component
    /// rather than the provider (`use_alt_on_na` override of a weak new
    /// allocation).
    pub fn alt_used(&self) -> bool {
        self.alt_used
    }

    /// The bank that actually supplied the final prediction: the
    /// alternate when [`alt_used`](TageLookup::alt_used), the provider
    /// otherwise (`None` = the bimodal base).
    pub fn providing_bank(&self) -> Option<usize> {
        if self.alt_used {
            self.alt
        } else {
            self.provider
        }
    }

    /// What the losing TAGE path would have predicted: the provider's
    /// prediction when the alternate was used, the alternate's
    /// prediction otherwise.
    pub fn alternate_pred(&self) -> bool {
        if self.alt_used {
            self.provider_pred
        } else {
            self.alt_pred
        }
    }
}

/// Planned table addresses for one upcoming conditional branch,
/// computed by the pipelined front end from the architectural history
/// *before* it advances past the branch (see
/// [`Tage::plan_conditional`]) — exactly what [`Tage::lookup`] would
/// compute at that point in the trace, just captured earlier so the
/// rows can be prefetched while other branches commit.
///
/// A plain `Copy` value like [`TageLookup`], so per-block plan scratch
/// is a flat pre-sized array and planning never touches the heap.
#[derive(Debug, Clone, Copy)]
pub struct TagePlan {
    indices: [u32; MAX_TAGE_TABLES],
    tags: [u16; MAX_TAGE_TABLES],
}

impl Default for TagePlan {
    fn default() -> Self {
        TagePlan {
            indices: [0; MAX_TAGE_TABLES],
            tags: [0; MAX_TAGE_TABLES],
        }
    }
}

/// The TAGE predictor: a bimodal base plus `N` partially tagged tables
/// indexed with geometrically increasing global-history folds; the
/// longest history match provides the prediction (PPM-like prediction by
/// partial matching).
///
/// This implementation follows the 2011 "new case for TAGE" update
/// policy: alt-on-newly-allocated tracking, usefulness counters with
/// graceful periodic reset, and single-entry allocation on misprediction
/// with deterministic pseudo-random table choice.
#[derive(Debug, Clone)]
pub struct Tage {
    config: TageConfig,
    base: BimodalTable,
    /// All tagged tables in one contiguous row-major allocation:
    /// table `i`, entry `j` lives at `(i << tagged_log_entries) | j`.
    /// One allocation instead of `N` keeps bank probes on the same
    /// cache-friendly backing and removes a pointer chase per probe.
    tables: Vec<TaggedEntry>,
    history: HistoryState,
    index_folds: Vec<usize>,
    tag_folds: Vec<(usize, usize)>,
    // Per-table constants hoisted out of the per-branch loops (the
    // geometric history_length() involves a powf; computing it per
    // branch per table dominated the original lookup profile).
    /// `log2(entries) - (i % log2(entries))`: the PC-fold shift.
    pc_shifts: [u32; MAX_TAGE_TABLES],
    /// Path-history mask for `min(history_length(i), path_bits)` bits.
    path_masks: [u64; MAX_TAGE_TABLES],
    /// `(1 << tag_bits[i]) - 1`.
    tag_masks: [u16; MAX_TAGE_TABLES],
    use_alt_on_na: SaturatingCounter,
    tick: u64,
    reset_msb: bool,
    alloc_seed: u64,
    lookup: Option<TageLookup>,
}

/// The low `bits` bits set, saturating at the full word — the guard for
/// path-history masks, where a legal 64-bit configuration would
/// otherwise hit `1u64 << 64` (shift overflow; the same bug class as
/// `FoldedHistory::set_value`'s 32-bit escape hatch).
#[inline]
fn low_mask(bits: usize) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

impl Tage {
    /// Builds a TAGE predictor from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`TageConfig::validate`].
    // bp-lint: allow-item(hot-path-alloc, "table construction is cold; steady-state predict/update is allocation-free (tests/hotpath_allocations.rs)")
    pub fn new(config: TageConfig) -> Self {
        config.validate();
        let capacity = (config.max_history + 1).next_power_of_two().max(2048);
        let mut history = HistoryState::new(capacity, config.path_bits);
        let mut index_folds = Vec::new();
        let mut tag_folds = Vec::new();
        let mut pc_shifts = [0u32; MAX_TAGE_TABLES];
        let mut path_masks = [0u64; MAX_TAGE_TABLES];
        let mut tag_masks = [0u16; MAX_TAGE_TABLES];
        let log = config.tagged_log_entries;
        for i in 0..config.num_tables() {
            let hlen = config.history_length(i);
            index_folds.push(history.add_fold(hlen, log));
            let tw = config.tag_bits[i];
            tag_folds.push((history.add_fold(hlen, tw), history.add_fold(hlen, tw - 1)));
            pc_shifts[i] = (log - (i % log)) as u32;
            path_masks[i] = low_mask(hlen.min(config.path_bits));
            tag_masks[i] = low_mask(tw) as u16;
        }
        let entry = TaggedEntry {
            ctr: SaturatingCounter::new(config.counter_bits),
            tag: 0,
            useful: 0,
        };
        Tage {
            base: BimodalTable::new(1 << config.base_log_entries),
            tables: vec![entry; config.num_tables() << log],
            history,
            index_folds,
            tag_folds,
            pc_shifts,
            path_masks,
            tag_masks,
            use_alt_on_na: SaturatingCounter::new(4),
            tick: 0,
            reset_msb: true,
            alloc_seed: 0x9E37_79B9_7F4A_7C15,
            lookup: None,
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &TageConfig {
        &self.config
    }

    /// Access to the shared history state (the composed predictor reads
    /// global/path history from here for its corrector components).
    pub fn history(&self) -> &HistoryState {
        &self.history
    }

    /// The entry of tagged table `table` at `index` in the flattened
    /// row-major backing.
    ///
    /// Every `index` reaching here was produced by [`Tage::table_index`]
    /// (directly or stashed in a [`TageLookup`]), which masks it to
    /// `tagged_log_entries` bits, and every `table` is `< num_tables()`,
    /// so `(table << log) | index < num_tables() << log == tables.len()`
    /// always holds. The unchecked access removes a bounds check from
    /// the probe loop of every lookup and from every update; the
    /// invariant is re-asserted in debug builds.
    #[inline]
    fn entry(&self, table: usize, index: u32) -> &TaggedEntry {
        let slot = (table << self.config.tagged_log_entries) | index as usize;
        debug_assert!(slot < self.tables.len());
        // SAFETY: `slot < tables.len()` per the masked-index invariant
        // documented above.
        unsafe { self.tables.get_unchecked(slot) }
    }

    #[inline]
    fn entry_mut(&mut self, table: usize, index: u32) -> &mut TaggedEntry {
        let slot = (table << self.config.tagged_log_entries) | index as usize;
        debug_assert!(slot < self.tables.len());
        // SAFETY: as in [`Tage::entry`].
        unsafe { self.tables.get_unchecked_mut(slot) }
    }

    /// `pcb`/`path` are `pc_bits(pc)` and the packed path history,
    /// hoisted out of the per-table loop by the caller.
    ///
    /// The path-history contribution is a two-term branchless fold plus
    /// a remainder loop, bit-identical to
    /// `fold_u64(masked_path.max(1), log.min(16))`: the generic fold
    /// XORs successive `fold_bits`-wide slices until the residue is
    /// zero, so unconditionally XORing the first two slices (extra
    /// slices of a short value are zero, and the `.max(1)` argument is
    /// nonzero so the generic loop always consumes slice zero) and then
    /// looping over whatever remains above `2 * fold_bits` computes the
    /// same value. For every registry configuration `masked_path` fits
    /// in `path_bits = 16 <= 2 * fold_bits` bits, making the remainder
    /// loop dead there — which is the point: the generic fold's
    /// data-dependent trip count sat on the index phase of all 12
    /// tables, and this form retires as straight-line XOR/shift.
    /// Reference form pinned against the fused lookup loop by the
    /// debug assertions in [`Tage::lookup`] and the fold-equivalence
    /// test, hence unused in release builds.
    #[cfg_attr(not(any(debug_assertions, test)), allow(dead_code))]
    #[inline]
    fn table_index(&self, hist: &HistoryState, pcb: u64, path: u64, i: usize) -> u32 {
        let log = self.config.tagged_log_entries;
        let fold_bits = log.min(16) as u32;
        let fold_mask = low_mask(fold_bits as usize);
        let x = (path & self.path_masks[i]).max(1);
        let mut path_fold = (x & fold_mask) ^ ((x >> fold_bits) & fold_mask);
        let mut rest = x >> (2 * fold_bits);
        while rest != 0 {
            path_fold ^= rest & fold_mask;
            rest >>= fold_bits;
        }
        let v = pcb
            ^ (pcb >> self.pc_shifts[i])
            ^ u64::from(hist.fold(self.index_folds[i]))
            ^ path_fold;
        (v & low_mask(log)) as u32
    }

    /// Reference form for the fused lookup loop's debug assertions.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    #[inline]
    fn table_tag(&self, hist: &HistoryState, pcb: u64, i: usize) -> u16 {
        let (f1, f2) = self.tag_folds[i];
        let v = pcb ^ u64::from(hist.fold(f1)) ^ (u64::from(hist.fold(f2)) << 1);
        (v as u16) & self.tag_masks[i]
    }

    /// Issues a read prefetch for the one lookup row whose address is an
    /// exact function of `pc` alone: the bimodal base row.
    ///
    /// A pure hint — reads and cache prefetches only, no state change —
    /// so calling it one branch early (the simulator's lookahead) or not
    /// at all cannot change any prediction. The tagged-bank rows are
    /// deliberately *not* hinted: their addresses require the
    /// folded-history index computation, and re-running that one branch
    /// ahead was measured to cost more (~12 fold reads + mixes +
    /// prefetch instructions per branch) than the L2-hit latency it
    /// hides while the ~72 KB bank array stays cache-resident.
    pub fn prefetch(&self, pc: u64) {
        self.base.prefetch(pc);
    }

    /// Performs the TAGE lookup for `pc` and returns the lookup record
    /// (also cached internally for the subsequent [`Tage::update`]).
    /// Allocation-free: the lookup is a `Copy` value.
    ///
    /// Two-phase: the *index phase* computes every bank's index and tag
    /// in one tight loop (the iterations are mutually independent given
    /// the current history, so they pipeline), and only then does the
    /// *probe phase* walk the banks longest-history-first — with all
    /// row addresses known up front, the bank reads issue and overlap
    /// instead of serializing behind the match scan. Software prefetch
    /// between the phases was measured and rejected here: with the
    /// probe loads issuing nanoseconds later the prefetches were pure
    /// overhead (~25% slower); the place where prefetching these rows
    /// *does* pay is one branch early, via [`Tage::prefetch`].
    pub fn lookup(&mut self, pc: u64) -> TageLookup {
        let mut indices = [0u32; MAX_TAGE_TABLES];
        let mut tags = [0u16; MAX_TAGE_TABLES];
        self.index_phase(&self.history, pc_bits(pc), &mut indices, &mut tags);
        self.probe(pc, indices, tags)
    }

    /// The index phase of a lookup, over an arbitrary history view:
    /// [`Tage::table_index`]/[`Tage::table_tag`] fused into one
    /// zipped-iterator loop. Per-table `Vec`/array indexing in those
    /// helpers costs ~8 bounds checks per table, and at 12 tables that
    /// overhead crowds the out-of-order window that should be filled
    /// with the probe loads of *neighbouring branches*. The debug
    /// assertion at the end pins the fused loop to the reference
    /// helpers term by term.
    ///
    /// `hist` is always the architectural history: a scalar lookup
    /// reads it at predict time, a pipelined plan at plan time (before
    /// [`Tage::push_history`] advances it past the branch) — the same
    /// point in the trace, so the two paths cannot drift.
    #[inline]
    fn index_phase(
        &self,
        hist: &HistoryState,
        pcb: u64,
        indices: &mut [u32; MAX_TAGE_TABLES],
        tags: &mut [u16; MAX_TAGE_TABLES],
    ) {
        let n = self.config.num_tables();
        let path = hist.path();
        let log = self.config.tagged_log_entries;
        let fold_bits = log.min(16) as u32;
        let fold_mask = low_mask(fold_bits as usize);
        let index_mask = low_mask(log);
        let comps = hist.folds();
        for (((((index, tag), &fid), &(tf1, tf2)), &pc_shift), (&path_mask, &tag_mask)) in indices
            [..n]
            .iter_mut()
            .zip(tags[..n].iter_mut())
            .zip(&self.index_folds)
            .zip(&self.tag_folds)
            .zip(&self.pc_shifts[..n])
            .zip(self.path_masks[..n].iter().zip(&self.tag_masks[..n]))
        {
            let x = (path & path_mask).max(1);
            let mut path_fold = (x & fold_mask) ^ ((x >> fold_bits) & fold_mask);
            let mut rest = x >> (2 * fold_bits);
            while rest != 0 {
                path_fold ^= rest & fold_mask;
                rest >>= fold_bits;
            }
            let v = pcb ^ (pcb >> pc_shift) ^ u64::from(comps[fid]) ^ path_fold;
            *index = (v & index_mask) as u32;
            let t = pcb ^ u64::from(comps[tf1]) ^ (u64::from(comps[tf2]) << 1);
            *tag = (t as u16) & tag_mask;
        }
        #[cfg(debug_assertions)]
        for i in 0..n {
            assert_eq!(indices[i], self.table_index(hist, pcb, path, i));
            assert_eq!(tags[i], self.table_tag(hist, pcb, i));
        }
    }

    /// The probe phase of a lookup: walk the banks longest-history-first
    /// through the given row addresses, resolve provider/alternate and
    /// the `use_alt_on_na` policy, and cache the result for the
    /// subsequent [`Tage::update`]. Shared verbatim by the scalar
    /// [`Tage::lookup`] and the pipelined [`Tage::lookup_planned`], so
    /// the match/decision logic is one piece of code in both modes.
    #[inline]
    fn probe(
        &mut self,
        pc: u64,
        indices: [u32; MAX_TAGE_TABLES],
        tags: [u16; MAX_TAGE_TABLES],
    ) -> TageLookup {
        let n = self.config.num_tables();
        let mut provider = None;
        let mut alt = None;
        for i in (0..n).rev() {
            if self.entry(i, indices[i]).tag == tags[i] {
                if provider.is_none() {
                    provider = Some(i);
                } else {
                    alt = Some(i);
                    break;
                }
            }
        }
        let base_pred = self.base.predict(pc);
        let alt_pred = alt.map_or(base_pred, |i| self.entry(i, indices[i]).ctr.is_taken());
        let (provider_pred, weak_newalloc, low_confidence) = match provider {
            Some(i) => {
                let e = self.entry(i, indices[i]);
                let weak = e.ctr.confidence() == 0;
                (e.ctr.is_taken(), weak && e.useful == 0, weak)
            }
            None => (base_pred, false, false),
        };
        // Newly allocated entries are statistically less accurate than
        // the alternate prediction; use_alt_on_na adapts the choice.
        let alt_used = provider.is_some() && weak_newalloc && self.use_alt_on_na.is_taken();
        let pred = if alt_used { alt_pred } else { provider_pred };
        let lookup = TageLookup {
            indices,
            tags,
            provider,
            alt,
            provider_pred,
            alt_pred,
            pred,
            low_confidence,
            weak_newalloc,
            alt_used,
        };
        self.lookup = Some(lookup);
        lookup
    }

    /// Front-end step for an upcoming conditional branch: computes every
    /// bank's index and tag from the architectural history into `plan`
    /// and issues read prefetches for the planned tagged rows and the
    /// bimodal base row. The caller advances the history past the branch
    /// afterwards ([`Tage::push_history`]) — the fold work runs **once**
    /// per branch, same as the scalar drive, just before the commit loop
    /// instead of inside it. Legal because index inputs evolve purely
    /// from the trace's `(PC, outcome)` stream, and [`Tage::update`]
    /// (prediction-dependent training) never touches one.
    #[inline]
    pub fn plan_conditional(&mut self, pc: u64, plan: &mut TagePlan) {
        self.index_phase(
            &self.history,
            pc_bits(pc),
            &mut plan.indices,
            &mut plan.tags,
        );
        let n = self.config.num_tables();
        let log = self.config.tagged_log_entries;
        for (i, &index) in plan.indices[..n].iter().enumerate() {
            bp_components::prefetch_read(&self.tables, (i << log) | index as usize);
        }
        self.base.prefetch(pc);
    }

    /// [`Tage::lookup`] through a front-end [`TagePlan`]: skips the
    /// index phase and probes the banks through the planned (and
    /// already prefetched) row addresses. Caches the lookup for the
    /// subsequent [`Tage::update`] exactly like `lookup`. The
    /// architectural history has already run ahead when this is called,
    /// so the plan is the *only* source of the row addresses here.
    #[inline]
    pub fn lookup_planned(&mut self, pc: u64, plan: &TagePlan) -> TageLookup {
        self.probe(pc, plan.indices, plan.tags)
    }

    #[inline]
    fn next_rand(&mut self) -> u64 {
        // xorshift64*: deterministic allocation tie-breaking, as the CBP
        // reference implementations do with a small LFSR.
        let mut x = self.alloc_seed;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.alloc_seed = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Trains TAGE with the resolved outcome. Must follow a
    /// [`Tage::lookup`] for the same branch. Does **not** push history
    /// (the composed predictor owns history updates so that corrector
    /// components see a consistent view).
    ///
    /// # Panics
    ///
    /// Panics if no lookup is pending.
    pub fn update(&mut self, pc: u64, taken: bool) {
        // bp-lint: allow(panic-surface, "CBP protocol contract documented above: update() without a pending lookup() is caller error, not data-dependent")
        let lookup = self.lookup.take().expect("update without pending lookup");
        let mispredicted = lookup.pred != taken;

        // Allocation: on a misprediction, try to allocate one entry in a
        // table with longer history than the provider.
        let n = self.config.num_tables();
        let start = lookup.provider.map_or(0, |p| p + 1);
        if mispredicted && start < n {
            // Pseudo-randomly skip up to 2 candidate tables so that
            // allocations spread across history lengths.
            let skip = (self.next_rand() & 3).min(2) as usize;
            let counter_bits = self.config.counter_bits;
            let mut allocated = false;
            let mut skipped = 0;
            for i in start..n {
                let e = self.entry_mut(i, lookup.indices[i]);
                if e.useful == 0 {
                    if skipped < skip {
                        skipped += 1;
                        continue;
                    }
                    e.tag = lookup.tags[i];
                    e.ctr = SaturatingCounter::new_weak(counter_bits, taken);
                    allocated = true;
                    break;
                }
            }
            if !allocated {
                // All candidates useful: age them so the branch can
                // allocate next time.
                for i in start..n {
                    let e = self.entry_mut(i, lookup.indices[i]);
                    e.useful = e.useful.saturating_sub(1);
                }
            }
        }

        // use_alt_on_na adaptation: when the provider was a weak new
        // allocation and provider/alt disagree, learn which was right.
        if let Some(p) = lookup.provider {
            if lookup.weak_newalloc && lookup.provider_pred != lookup.alt_pred {
                self.use_alt_on_na.train(lookup.alt_pred == taken);
            }

            // Train the provider.
            let u_max = (1u8 << self.config.useful_bits) - 1;
            let e = self.entry_mut(p, lookup.indices[p]);
            e.ctr.train(taken);

            // Usefulness: provider differed from alt and was right.
            if lookup.provider_pred != lookup.alt_pred {
                if lookup.provider_pred == taken {
                    e.useful = (e.useful + 1).min(u_max);
                } else {
                    e.useful = e.useful.saturating_sub(1);
                }
            }

            // When the provider is a weak new allocation, also train the
            // alternate so it does not decay into uselessness.
            if lookup.weak_newalloc {
                match lookup.alt {
                    Some(a) => self.entry_mut(a, lookup.indices[a]).ctr.train(taken),
                    None => self.base.update(pc, taken),
                }
            }
        } else {
            self.base.update(pc, taken);
        }

        // Graceful periodic reset of the usefulness bits: alternately
        // clear the MSB and LSB halves.
        self.tick += 1;
        if self.tick.is_multiple_of(self.config.reset_period) {
            let mask = if self.reset_msb {
                !(1u8 << (self.config.useful_bits - 1))
            } else {
                !1u8
            };
            self.reset_msb = !self.reset_msb;
            for e in self.tables.iter_mut() {
                e.useful &= mask;
            }
        }
    }

    /// Pushes the resolved branch into the direction/path histories.
    pub fn push_history(&mut self, pc: u64, taken: bool) {
        self.history.push(taken, pc);
    }

    /// Pushes only path history (non-conditional branches).
    pub fn push_path(&mut self, pc: u64) {
        self.history.push_path_only(pc);
    }

    /// Erases the direction/folded/path histories (a context-switch
    /// flush) while keeping every learned table — base counters, tagged
    /// entries, useful bits, the `use_alt_on_na` register. Allocation-
    /// free; see [`HistoryState::flush`] for the checkpoint interplay.
    pub fn flush_history(&mut self) {
        self.history.flush();
    }

    /// Total storage in bits (base + tagged tables + use-alt counter).
    pub fn storage_bits(&self) -> u64 {
        self.storage_items().iter().map(|i| i.bits).sum()
    }

    /// Itemized storage: the shared-hysteresis base, every tagged bank
    /// (entries × (counter + useful + tag) bits), and the `use_alt_on_na`
    /// register.
    // bp-lint: allow-item(hot-path-alloc, "storage accounting is reporting-time only, never on the predict/update path")
    pub fn storage_items(&self) -> Vec<StorageItem> {
        let mut items = vec![StorageItem::new("base", self.base.storage_bits())];
        let entries = 1u64 << self.config.tagged_log_entries;
        for i in 0..self.config.num_tables() {
            let per_entry = (self.config.counter_bits
                + self.config.useful_bits
                + self.config.tag_bits[i]) as u64;
            items.push(StorageItem::new(
                format!("tagged[{i}]"),
                entries * per_entry,
            ));
        }
        items.push(StorageItem::new("use-alt-on-na", 4));
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_branch<F: FnMut(u64) -> bool>(
        tage: &mut Tage,
        pc: u64,
        n: usize,
        mut outcome: F,
    ) -> f64 {
        let mut correct = 0usize;
        let mut counted = 0usize;
        for i in 0..n {
            let taken = outcome(i as u64);
            let lookup = tage.lookup(pc);
            if i >= n / 2 {
                counted += 1;
                correct += usize::from(lookup.pred == taken);
            }
            tage.update(pc, taken);
            tage.push_history(pc, taken);
        }
        correct as f64 / counted as f64
    }

    #[test]
    fn geometric_series_endpoints() {
        let c = TageConfig::default();
        assert_eq!(c.history_length(0), c.min_history);
        assert_eq!(c.history_length(c.num_tables() - 1), c.max_history);
        // Strictly increasing.
        for i in 1..c.num_tables() {
            assert!(c.history_length(i) > c.history_length(i - 1));
        }
    }

    #[test]
    fn learns_biased_branch() {
        let mut tage = Tage::new(TageConfig::default());
        let acc = run_branch(&mut tage, 0x400, 500, |_| true);
        assert!(acc > 0.99, "biased branch accuracy {acc}");
    }

    #[test]
    fn learns_short_periodic_pattern() {
        let mut tage = Tage::new(TageConfig::default());
        let acc = run_branch(&mut tage, 0x400, 4000, |i| i % 3 == 0);
        assert!(acc > 0.95, "period-3 accuracy {acc}");
    }

    #[test]
    fn learns_long_periodic_pattern() {
        // Period 24 needs a mid-length tagged table; bimodal alone fails.
        let mut tage = Tage::new(TageConfig::default());
        let acc = run_branch(&mut tage, 0x400, 20_000, |i| (i % 24) < 11);
        assert!(acc > 0.9, "period-24 accuracy {acc}");
    }

    #[test]
    fn learns_global_correlation_between_branches() {
        // Branch B repeats the outcome of branch A: global history nails
        // it once A's outcome is in the history.
        let mut tage = Tage::new(TageConfig::default());
        let mut correct = 0;
        let total = 4000;
        for i in 0..total {
            let a_out = (i % 7) < 4;
            let la = tage.lookup(0x100);
            let _ = la;
            tage.update(0x100, a_out);
            tage.push_history(0x100, a_out);

            let lb = tage.lookup(0x200);
            if i >= total / 2 {
                correct += usize::from(lb.pred == a_out);
            }
            tage.update(0x200, a_out);
            tage.push_history(0x200, a_out);
        }
        let acc = correct as f64 / (total / 2) as f64;
        assert!(acc > 0.97, "correlated branch accuracy {acc}");
    }

    #[test]
    fn random_branch_accuracy_is_chance() {
        // A pseudo-random branch is unpredictable; TAGE must not collapse
        // (sanity for allocation churn).
        let mut tage = Tage::new(TageConfig::default());
        let mut x = 0x12345u64;
        let acc = run_branch(&mut tage, 0x400, 4000, move |_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x & 1 == 1
        });
        assert!(acc > 0.4 && acc < 0.6, "random branch accuracy {acc}");
    }

    #[test]
    fn storage_is_in_target_ballpark() {
        let tage = Tage::new(TageConfig::default());
        let kbits = tage.storage_bits() as f64 / 1024.0;
        // TAGE part of the 228 Kbit TAGE-GSC: roughly 190-215 Kbit.
        assert!(
            (185.0..=220.0).contains(&kbits),
            "TAGE storage {kbits:.1} Kbit out of ballpark"
        );
    }

    #[test]
    #[should_panic(expected = "update without pending lookup")]
    fn update_requires_lookup() {
        let mut tage = Tage::new(TageConfig::default());
        tage.update(0x40, true);
    }

    #[test]
    fn full_width_path_history_is_legal() {
        // Regression: `table_index` masked the path with
        // `(1 << hlen.min(path_bits)) - 1`, which is shift overflow
        // (debug panic) for a legal 64-bit path-history configuration
        // whenever a table's history length reaches 64 — the same bug
        // class PR 2 fixed in `FoldedHistory::set_value`.
        let mut tage = Tage::new(TageConfig {
            path_bits: 64,
            ..TageConfig::default()
        });
        let acc = run_branch(&mut tage, 0x400, 500, |_| true);
        assert!(acc > 0.99, "64-bit path config accuracy {acc}");
    }

    #[test]
    fn table_index_path_fold_matches_generic_fold() {
        // `table_index` inlines the path-history fold as two
        // unconditional terms plus a remainder loop; this pins it to
        // the generic `fold_u64` it replaced, under a configuration
        // (64-bit path, 4-bit fold width) where the remainder loop is
        // actually live, and under the default registry geometry where
        // it is dead.
        for config in [
            TageConfig::default(),
            TageConfig {
                path_bits: 64,
                tagged_log_entries: 4,
                base_log_entries: 4,
                ..TageConfig::default()
            },
        ] {
            let mut tage = Tage::new(config);
            let mut pc = 0x9E37_79B9u64;
            for step in 0..2048u64 {
                pc = pc.wrapping_mul(0x2545_F491_4F6C_DD1D).rotate_left(13);
                let pcb = pc_bits(pc);
                let path = tage.history.path();
                let log = tage.config.tagged_log_entries;
                for i in 0..tage.config.num_tables() {
                    let expected = (pcb
                        ^ (pcb >> tage.pc_shifts[i])
                        ^ u64::from(tage.history.fold(tage.index_folds[i]))
                        ^ bp_components::fold_u64((path & tage.path_masks[i]).max(1), log.min(16)))
                        & low_mask(log);
                    assert_eq!(
                        u64::from(tage.table_index(&tage.history, pcb, path, i)),
                        expected,
                        "table {i} at step {step}"
                    );
                }
                tage.push_history(pc, step & 3 == 0);
            }
        }
    }

    #[test]
    fn low_mask_saturates_at_word_width() {
        assert_eq!(low_mask(0), 0);
        assert_eq!(low_mask(16), 0xFFFF);
        assert_eq!(low_mask(63), u64::MAX >> 1);
        assert_eq!(low_mask(64), u64::MAX);
        assert_eq!(low_mask(80), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn rejects_too_many_tables() {
        let _ = Tage::new(TageConfig {
            tag_bits: vec![8; MAX_TAGE_TABLES + 1],
            ..TageConfig::default()
        });
    }

    #[test]
    fn lookup_is_deterministic() {
        let mut a = Tage::new(TageConfig::default());
        let mut b = Tage::new(TageConfig::default());
        for i in 0..200u64 {
            let pc = 0x1000 + (i % 5) * 8;
            let taken = i % 3 != 0;
            assert_eq!(a.lookup(pc).pred, b.lookup(pc).pred, "diverged at {i}");
            a.update(pc, taken);
            b.update(pc, taken);
            a.push_history(pc, taken);
            b.push_history(pc, taken);
        }
    }
}
