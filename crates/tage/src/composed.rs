//! The composed TAGE + SC (+ loop predictor) predictors of the paper.

use crate::sc::{LocalScConfig, ScConfig, ScLookup, StatisticalCorrector};
use crate::tage::{Tage, TageConfig, TageLookup, TagePlan};
use bp_components::{
    clamp_pipeline_depth, ConditionalPredictor, ConfidenceBucket, ConfigError, ConfigValue,
    LoopPredictor, LoopPredictorConfig, PredictionAttribution, PredictorConfig, PredictorStats,
    ProviderComponent, StorageBudget, StorageItem, DEFAULT_PIPELINE_DEPTH, MAX_PIPELINE_DEPTH,
};
use bp_trace::BranchRecord;
use imli::{ImliCheckpoint, ImliConfig};

/// Configuration of a composed [`TageSc`] predictor.
#[derive(Debug, Clone)]
pub struct TageScConfig {
    /// TAGE geometry.
    pub tage: TageConfig,
    /// Statistical corrector geometry (including IMLI/local options).
    pub sc: ScConfig,
    /// Loop predictor (part of the "+L" configurations).
    pub loop_predictor: Option<LoopPredictorConfig>,
    /// Display name.
    pub name: String,
}

// bp-lint: allow-item(hot-path-alloc, "named-configuration construction is cold, once per predictor")
impl TageScConfig {
    /// TAGE-GSC: the paper's base global-history predictor.
    pub fn gsc() -> Self {
        TageScConfig {
            tage: TageConfig::default(),
            sc: ScConfig::default(),
            loop_predictor: None,
            name: "TAGE-GSC".to_owned(),
        }
    }

    /// TAGE-GSC + both IMLI components (Figure 5).
    pub fn gsc_imli() -> Self {
        TageScConfig {
            sc: ScConfig {
                imli: Some(ImliConfig::default()),
                imli_in_global_indices: true,
                ..ScConfig::default()
            },
            name: "TAGE-GSC+IMLI".to_owned(),
            ..Self::gsc()
        }
    }

    /// TAGE-GSC + IMLI-SIC only (the lower bars of Figures 8-11).
    pub fn gsc_sic_only() -> Self {
        TageScConfig {
            sc: ScConfig {
                imli: Some(ImliConfig::sic_only()),
                imli_in_global_indices: true,
                ..ScConfig::default()
            },
            name: "TAGE-GSC+SIC".to_owned(),
            ..Self::gsc()
        }
    }

    /// TAGE-GSC + IMLI-OH only (Figure 13's comparison against WH).
    pub fn gsc_oh_only() -> Self {
        TageScConfig {
            sc: ScConfig {
                imli: Some(ImliConfig::oh_only()),
                ..ScConfig::default()
            },
            name: "TAGE-GSC+OH".to_owned(),
            ..Self::gsc()
        }
    }

    /// TAGE-GSC + loop predictor only (the §4.2.2 loop-predictor-benefit
    /// ablation).
    pub fn gsc_loop() -> Self {
        TageScConfig {
            loop_predictor: Some(LoopPredictorConfig::default()),
            name: "TAGE-GSC+LOOP".to_owned(),
            ..Self::gsc()
        }
    }

    /// TAGE-GSC + IMLI-SIC + loop predictor (the §4.2.2 ablation showing
    /// the loop predictor is nearly redundant once SIC is present).
    pub fn gsc_sic_loop() -> Self {
        TageScConfig {
            loop_predictor: Some(LoopPredictorConfig::default()),
            name: "TAGE-GSC+SIC+LOOP".to_owned(),
            ..Self::gsc_sic_only()
        }
    }

    /// TAGE-SC-L: local-history SC components + loop predictor ("+L").
    pub fn sc_l() -> Self {
        TageScConfig {
            sc: ScConfig {
                local: Some(LocalScConfig::default()),
                ..ScConfig::default()
            },
            loop_predictor: Some(LoopPredictorConfig::default()),
            name: "TAGE-SC-L".to_owned(),
            ..Self::gsc()
        }
    }

    /// TAGE-SC-L + IMLI ("+I+L", the §5 record configuration).
    pub fn sc_l_imli() -> Self {
        TageScConfig {
            sc: ScConfig {
                local: Some(LocalScConfig::default()),
                imli: Some(ImliConfig::default()),
                imli_in_global_indices: true,
                ..ScConfig::default()
            },
            loop_predictor: Some(LoopPredictorConfig::default()),
            name: "TAGE-SC-L+IMLI".to_owned(),
            ..Self::gsc()
        }
    }

    /// Replaces the IMLI configuration (for ablations such as the
    /// §4.3.2 delayed-update experiment).
    #[must_use]
    pub fn with_imli(mut self, imli: ImliConfig, rename: &str) -> Self {
        self.sc.imli = Some(imli);
        self.name = rename.to_owned();
        self
    }
}

// bp-lint: allow-item(hot-path-alloc, "config validation/serialization and build() are cold; never on the per-branch path")
impl PredictorConfig for TageScConfig {
    fn validate(&self) -> Result<(), ConfigError> {
        self.tage.check()?;
        self.sc.check()?;
        if let Some(lp) = &self.loop_predictor {
            lp.check()?;
        }
        if self.name.is_empty() {
            return Err("predictor name must not be empty".into());
        }
        Ok(())
    }

    fn build(&self) -> Box<dyn ConditionalPredictor + Send> {
        Box::new(TageSc::new(self.clone()))
    }

    fn storage_bits_estimate(&self) -> u64 {
        self.tage.storage_bits()
            + self.sc.storage_bits()
            + self
                .loop_predictor
                .as_ref()
                .map_or(0, LoopPredictorConfig::storage_bits)
    }

    fn to_value(&self) -> ConfigValue {
        ConfigValue::map()
            .set("name", ConfigValue::str(&self.name))
            .set("tage", self.tage.to_value())
            .set("sc", self.sc.to_value())
            .set_opt(
                "loop",
                self.loop_predictor
                    .as_ref()
                    .map(LoopPredictorConfig::to_value),
            )
    }

    fn from_value(value: &ConfigValue) -> Result<Self, ConfigError> {
        value.expect_keys("tage-sc config", &["name", "tage", "sc", "loop"])?;
        Ok(TageScConfig {
            name: value.req("name")?.as_str("name")?.to_owned(),
            tage: crate::TageConfig::from_value(value.req("tage")?)?,
            sc: crate::ScConfig::from_value(value.req("sc")?)?,
            loop_predictor: value
                .get("loop")
                .map(LoopPredictorConfig::from_value)
                .transpose()?,
        })
    }
}

/// A TAGE predictor backed by a statistical corrector and an optional
/// loop predictor — the composed predictor family the paper evaluates
/// (TAGE-GSC, TAGE-GSC+IMLI, TAGE-SC-L, TAGE-SC-L+IMLI).
///
/// Prediction flow per the paper's Figure 4: TAGE produces the main
/// prediction and a confidence; the corrector sums its components
/// (including the TAGE vote) and may revert; a confident loop predictor
/// overrides everything.
pub struct TageSc {
    tage: Tage,
    sc: StatisticalCorrector,
    loop_pred: Option<LoopPredictor>,
    name: String,
    last_pred: bool,
    ghist_window: usize,
    /// Pipeline distance D of the pipelined block drive: how many
    /// branches the front end plans (and prefetches) ahead of the
    /// commit loop.
    pipeline_depth: usize,
    /// Per-chunk plan scratch of the pipelined drive, pre-sized to the
    /// maximum depth at construction (`TagePlan` is `Copy`, so this is
    /// one inline array — no steady-state allocation, no heap at all).
    plans: [TagePlan; MAX_PIPELINE_DEPTH],
}

impl TageSc {
    /// Builds the composed predictor.
    ///
    /// # Panics
    ///
    /// Panics if any sub-configuration fails validation.
    pub fn new(config: TageScConfig) -> Self {
        let max_global = config.sc.global_lengths.iter().copied().max().unwrap_or(0);
        TageSc {
            tage: Tage::new(config.tage),
            sc: StatisticalCorrector::new(config.sc),
            loop_pred: config.loop_predictor.map(LoopPredictor::new),
            name: config.name,
            last_pred: false,
            ghist_window: max_global.min(64),
            pipeline_depth: DEFAULT_PIPELINE_DEPTH,
            plans: [TagePlan::default(); MAX_PIPELINE_DEPTH],
        }
    }

    /// Read-only access to the embedded TAGE.
    pub fn tage(&self) -> &Tage {
        &self.tage
    }

    /// Read-only access to the corrector.
    pub fn corrector(&self) -> &StatisticalCorrector {
        &self.sc
    }

    /// The IMLI speculative checkpoint, when IMLI is configured — the
    /// paper's 26-bit speculation argument, surfaced for the simulator's
    /// speculative-fetch model.
    pub fn imli_checkpoint(&self) -> Option<ImliCheckpoint> {
        self.sc.imli().map(|s| s.checkpoint())
    }

    /// Storage breakdown: (component, bits).
    // bp-lint: allow-item(hot-path-alloc, "reporting helper, cold; never on the per-branch path")
    pub fn budget_breakdown(&self) -> Vec<(String, u64)> {
        let mut parts = vec![
            ("tage".to_owned(), self.tage.storage_bits()),
            ("sc".to_owned(), self.sc.storage_bits()),
        ];
        if let Some(lp) = &self.loop_pred {
            parts.push(("loop".to_owned(), lp.storage_bits()));
        }
        parts
    }

    /// The shared prediction path behind both [`predict`] and
    /// [`predict_attributed`]: one flow, so the two can never diverge;
    /// the attribution is assembled from values the prediction needs
    /// anyway and optimizes away when the caller drops it.
    ///
    /// [`predict`]: ConditionalPredictor::predict
    /// [`predict_attributed`]: ConditionalPredictor::predict_attributed
    #[inline]
    fn predict_full(&mut self, pc: u64) -> (bool, PredictionAttribution) {
        let tl = self.tage.lookup(pc);
        let ghist = self.tage.history().global().low_bits(self.ghist_window);
        let path = self.tage.history().path();
        let sl = self.sc.predict(pc, tl.pred, tl.low_confidence, ghist, path);
        self.finish_predict(pc, tl, sl)
    }

    /// Everything downstream of the TAGE and corrector lookups: the
    /// possible corrector revert, loop override, attribution. One
    /// function behind both the scalar path (lookups from architectural
    /// state) and the pipelined path (lookups through front-end plans),
    /// so the decision flow cannot diverge between drive modes.
    #[inline]
    fn finish_predict(
        &mut self,
        pc: u64,
        tl: TageLookup,
        sl: ScLookup,
    ) -> (bool, PredictionAttribution) {
        let mut pred = sl.pred;
        let mut attribution = if sl.pred != tl.pred {
            // The corrector reverted TAGE; the alternate is TAGE itself.
            PredictionAttribution::new(
                ProviderComponent::Corrector,
                Some(tl.pred),
                ConfidenceBucket::from_sum(sl.sum().abs(), self.sc.theta()),
            )
        } else {
            PredictionAttribution::new(
                match tl.providing_bank() {
                    Some(bank) => ProviderComponent::Tagged(bank as u8),
                    None => ProviderComponent::Base,
                },
                Some(tl.alternate_pred()),
                if tl.low_confidence {
                    ConfidenceBucket::Low
                } else {
                    ConfidenceBucket::High
                },
            )
        };
        if let Some(lp) = &self.loop_pred {
            if let Some(loop_pred) = lp.predict(pc) {
                if loop_pred.high_confidence {
                    attribution = PredictionAttribution::new(
                        ProviderComponent::Loop,
                        Some(pred),
                        ConfidenceBucket::High,
                    );
                    pred = loop_pred.taken;
                }
            }
        }
        self.last_pred = pred;
        (pred, attribution)
    }

    /// The pipelined front end over one chunk of up to `pipeline_depth`
    /// records: for every conditional, plan the TAGE row addresses and
    /// the corrector's history-indexed rows from the architectural
    /// state (prefetching them), hint the bias and loop rows — then
    /// advance the architectural index inputs past the record.
    /// Advancing the real state here (instead of replaying a shadow
    /// copy) is what the purity invariant buys: the history-fold work
    /// runs **once** per branch, same as the scalar drive, just earlier
    /// — [`TageSc::train_planned`] never touches an index input.
    #[inline]
    fn plan_chunk(&mut self, chunk: &[BranchRecord]) {
        for (row, record) in chunk.iter().enumerate() {
            if record.is_conditional() {
                self.tage.plan_conditional(record.pc, &mut self.plans[row]);
                let ghist = self.tage.history().global().low_bits(self.ghist_window);
                let path = self.tage.history().path();
                self.sc.plan_row(row, record.pc, ghist, path);
                // The bias/loop rows are functions of the PC (and the
                // running prediction bias), so they need no plan — hint
                // them directly, chunk-depth branches early.
                self.sc.prefetch(record.pc, self.last_pred);
                if let Some(lp) = &self.loop_pred {
                    lp.prefetch(record.pc);
                }
                self.advance_conditional(record);
            } else {
                self.advance_nonconditional(record);
            }
        }
    }

    /// The prediction-dependent half of [`ConditionalPredictor::update`]:
    /// loop-table training, corrector training through the stashed
    /// lookup, TAGE allocation/training through the stashed lookup.
    /// Never touches an index input, so the pipelined commit loop can
    /// run it after the front end has advanced the histories.
    #[inline]
    fn train_planned(&mut self, record: &BranchRecord) {
        let mispredicted = self.last_pred != record.taken;
        if let Some(lp) = &mut self.loop_pred {
            // Allocate only for backward (loop-closing) branches so that
            // mispredicting forward branches cannot thrash the small
            // loop table.
            lp.update(
                record.pc,
                record.taken,
                mispredicted && record.is_backward(),
            );
        }
        self.sc.update(record.taken);
        self.tage.update(record.pc, record.taken);
    }

    /// Advances every index input past a conditional record — the pure
    /// half of [`ConditionalPredictor::update`].
    #[inline]
    fn advance_conditional(&mut self, record: &BranchRecord) {
        self.sc.observe(record);
        self.tage.push_history(record.pc, record.taken);
    }

    /// Advances every index input past a non-conditional record — the
    /// whole of [`ConditionalPredictor::notify_nonconditional`].
    #[inline]
    fn advance_nonconditional(&mut self, record: &BranchRecord) {
        self.sc.observe(record);
        self.tage.push_path(record.pc);
    }
}

impl ConditionalPredictor for TageSc {
    fn predict(&mut self, pc: u64) -> bool {
        self.predict_full(pc).0
    }

    fn prefetch(&self, pc: u64) {
        self.tage.prefetch(pc);
        self.sc.prefetch(pc, self.last_pred);
        if let Some(lp) = &self.loop_pred {
            lp.prefetch(pc);
        }
    }

    // The composed predictor's tables (~90 KB with the corrector) are
    // the one working set in the registry that overflows L1, so the
    // lookahead hint is worth its dispatch cost here.
    fn wants_prefetch(&self) -> bool {
        true
    }

    fn predict_attributed(&mut self, pc: u64) -> (bool, PredictionAttribution) {
        self.predict_full(pc)
    }

    fn update(&mut self, record: &BranchRecord) {
        // The scalar protocol is literally train-then-advance — the
        // same two halves the pipelined drive runs at commit and plan
        // time respectively, so the two drives cannot diverge.
        self.train_planned(record);
        self.advance_conditional(record);
    }

    fn flush_history(&mut self) {
        self.tage.flush_history();
        self.sc.flush_history();
    }

    fn notify_nonconditional(&mut self, record: &BranchRecord) {
        self.advance_nonconditional(record);
    }

    /// The pipelined block drive (`DriveMode::Pipelined`): per chunk of
    /// `pipeline_depth` records, a front-end pass plans every upcoming
    /// conditional's table addresses (issuing their prefetches a full
    /// chunk early) and advances the architectural index inputs, then
    /// the commit pass predicts through the precomputed addresses and
    /// performs the prediction-dependent training, in trace order.
    ///
    /// Bit-identical to [`run_block_scalar`] by the purity invariant —
    /// index inputs evolve only with the trace's `(PC, outcome)` stream,
    /// so capturing them at plan time of branch *i* (after branches
    /// `< i` advanced them) reads exactly the state the scalar drive
    /// would at predict time, and the commit pass is the same
    /// train-then-gather code the scalar path runs. Allocation-free in
    /// steady state: the plan scratch is pre-sized at construction.
    ///
    /// [`run_block_scalar`]: ConditionalPredictor::run_block_scalar
    fn run_block(&mut self, block: &[BranchRecord], stats: &mut PredictorStats) {
        for chunk in block.chunks(self.pipeline_depth) {
            self.plan_chunk(chunk);
            for (row, record) in chunk.iter().enumerate() {
                if record.is_conditional() {
                    let plan = self.plans[row];
                    let tl = self.tage.lookup_planned(record.pc, &plan);
                    let sl = self.sc.predict_planned(row, tl.pred, tl.low_confidence);
                    let (pred, _) = self.finish_predict(record.pc, tl, sl);
                    stats.record(pred == record.taken);
                    self.train_planned(record);
                }
            }
        }
    }

    fn run_block_frontend(&mut self, block: &[BranchRecord]) {
        for chunk in block.chunks(self.pipeline_depth) {
            self.plan_chunk(chunk);
        }
    }

    fn set_pipeline_depth(&mut self, depth: usize) {
        self.pipeline_depth = clamp_pipeline_depth(depth);
    }

    fn name(&self) -> &str {
        &self.name
    }
}

// bp-lint: allow-item(hot-path-alloc, "storage accounting is cold; never on the per-branch path")
impl StorageBudget for TageSc {
    fn storage_items(&self) -> Vec<StorageItem> {
        let mut items: Vec<StorageItem> = self
            .tage
            .storage_items()
            .into_iter()
            .map(|i| i.prefixed("tage"))
            .collect();
        items.extend(
            self.sc
                .storage_items()
                .into_iter()
                .map(|i| i.prefixed("sc")),
        );
        if let Some(lp) = &self.loop_pred {
            items.push(StorageItem::new("loop", lp.storage_bits()));
        }
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accuracy<F: FnMut(u64) -> bool>(
        p: &mut TageSc,
        pc: u64,
        n: u64,
        warm: u64,
        mut outcome: F,
    ) -> f64 {
        let mut correct = 0u64;
        for i in 0..n {
            let taken = outcome(i);
            let pred = p.predict(pc);
            if i >= warm {
                correct += u64::from(pred == taken);
            }
            p.update(&BranchRecord::conditional(pc, pc + 0x40, taken));
        }
        correct as f64 / (n - warm) as f64
    }

    #[test]
    fn gsc_learns_patterns() {
        let mut p = TageSc::tage_gsc();
        let acc = accuracy(&mut p, 0x400, 6000, 3000, |i| i % 7 < 3);
        assert!(acc > 0.95, "period-7 accuracy {acc:.3}");
    }

    #[test]
    fn named_configs_have_expected_budget_ordering() {
        let gsc = TageSc::tage_gsc().storage_bits();
        let imli = TageSc::tage_gsc_imli().storage_bits();
        let scl = TageSc::tage_sc_l().storage_bits();
        let both = TageSc::tage_sc_l_imli().storage_bits();
        assert!(gsc < imli && imli < scl && scl < both);
        // Paper Table 1 shape: +I costs ~6 Kbit, +L costs ~28 Kbit.
        assert!((imli - gsc) < 8 * 1024, "+I adds {} bits", imli - gsc);
        assert!((scl - gsc) > 24 * 1024, "+L adds {} bits", scl - gsc);
        // Absolute ballpark of the paper's 228 Kbit TAGE-GSC.
        let kbits = gsc as f64 / 1024.0;
        assert!(
            (200.0..=245.0).contains(&kbits),
            "TAGE-GSC storage {kbits:.0} Kbit"
        );
    }

    #[test]
    fn loop_predictor_override_fixes_long_regular_loop() {
        // A 50-iteration constant-trip loop exceeds most history lengths'
        // reach through a bimodal-looking body; the loop predictor nails
        // the exit.
        let mut with_loop = TageSc::tage_sc_l();
        let mut trip = 0u64;
        let acc = accuracy(&mut with_loop, 0x700, 40_000, 20_000, |_| {
            trip = (trip + 1) % 50;
            trip != 0
        });
        assert!(acc > 0.99, "loop exit accuracy {acc:.4}");
    }

    #[test]
    fn imli_checkpoint_only_for_imli_configs() {
        assert!(TageSc::tage_gsc().imli_checkpoint().is_none());
        assert!(TageSc::tage_gsc_imli().imli_checkpoint().is_some());
    }

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(TageSc::tage_gsc().name(), "TAGE-GSC");
        assert_eq!(TageSc::tage_gsc_imli().name(), "TAGE-GSC+IMLI");
        assert_eq!(TageSc::tage_sc_l().name(), "TAGE-SC-L");
        assert_eq!(TageSc::tage_sc_l_imli().name(), "TAGE-SC-L+IMLI");
        assert_eq!(TageSc::tage_gsc_sic().name(), "TAGE-GSC+SIC");
    }

    #[test]
    fn nonconditional_branches_do_not_crash_or_predict() {
        let mut p = TageSc::tage_gsc_imli();
        p.notify_nonconditional(&BranchRecord::call(0x10, 0x1000));
        p.notify_nonconditional(&BranchRecord::ret(0x1004, 0x14));
        let _ = p.predict(0x40);
        p.update(&BranchRecord::conditional(0x40, 0x80, true));
    }
}
