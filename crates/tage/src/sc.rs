//! The statistical corrector (SC) stage.
//!
//! The corrector is a neural summation (paper Figure 5): bias tables
//! indexed with the PC and the TAGE prediction, GEHL-style tables indexed
//! with global history, optionally local-history tables (the "+L"
//! configurations), and optionally the paper's IMLI components. The final
//! prediction is the sign of the sum; counters train on a misprediction
//! or when the sum's magnitude falls below an adaptive threshold.

use bp_components::{
    mix64, pc_bits, sum_centered_padded, AdaptiveThreshold, ConfigError, ConfigValue, CounterBank,
    StorageItem, SumCtx, MAX_PIPELINE_DEPTH,
};
use bp_history::LocalHistoryTable;
use bp_trace::BranchRecord;
use imli::{ImliConfig, ImliSic, ImliState};

/// Configuration of the local-history part of the corrector (present in
/// the "+L" predictors only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalScConfig {
    /// Local history table entries.
    pub history_entries: usize,
    /// Local history width in bits.
    pub history_width: usize,
    /// Entries per local GEHL table.
    pub table_entries: usize,
    /// Local history lengths of the GEHL tables.
    pub lengths: Vec<usize>,
}

impl Default for LocalScConfig {
    /// 256 × 16-bit local histories and four 1K-entry tables — the
    /// ~28 Kbit addition that turns TAGE-GSC into TAGE-SC-L in Table 1.
    fn default() -> Self {
        LocalScConfig {
            history_entries: 256,
            history_width: 16,
            table_entries: 1024,
            lengths: vec![4, 8, 12, 16],
        }
    }
}

/// Configuration of the [`StatisticalCorrector`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScConfig {
    /// Entries of each of the two bias tables.
    pub bias_entries: usize,
    /// Entries of each global-history table.
    pub table_entries: usize,
    /// Counter width throughout the corrector.
    pub counter_bits: usize,
    /// Global history lengths of the GEHL tables.
    pub global_lengths: Vec<usize>,
    /// Weight given to the TAGE prediction in the summation.
    pub tage_weight: i32,
    /// IMLI components (None = the paper's base TAGE-GSC).
    pub imli: Option<ImliConfig>,
    /// Fold the IMLI counter into the indices of the first two global
    /// tables (the paper's §4.2 refinement).
    pub imli_in_global_indices: bool,
    /// Local-history components (None = global-only).
    pub local: Option<LocalScConfig>,
    /// Initial adaptive threshold.
    pub threshold_init: i32,
    /// Threshold ceiling.
    pub threshold_max: i32,
}

impl Default for ScConfig {
    /// The paper's GSC: bias + global tables only, ~18 Kbit.
    fn default() -> Self {
        ScConfig {
            bias_entries: 512,
            table_entries: 512,
            counter_bits: 6,
            global_lengths: vec![3, 8, 16, 33],
            tage_weight: 5,
            imli: None,
            imli_in_global_indices: false,
            local: None,
            threshold_init: 6,
            threshold_max: 255,
        }
    }
}

impl LocalScConfig {
    /// Serializes as a [`ConfigValue`] object.
    pub fn to_value(&self) -> ConfigValue {
        ConfigValue::map()
            .set("history_entries", ConfigValue::int(self.history_entries))
            .set("history_width", ConfigValue::int(self.history_width))
            .set("table_entries", ConfigValue::int(self.table_entries))
            .set("lengths", ConfigValue::int_list(&self.lengths))
    }

    /// Parses from a [`ConfigValue`] object (strict keys).
    pub fn from_value(value: &ConfigValue) -> Result<Self, ConfigError> {
        value.expect_keys(
            "local sc config",
            &[
                "history_entries",
                "history_width",
                "table_entries",
                "lengths",
            ],
        )?;
        Ok(LocalScConfig {
            history_entries: value.req("history_entries")?.as_usize("history_entries")?,
            history_width: value.req("history_width")?.as_usize("history_width")?,
            table_entries: value.req("table_entries")?.as_usize("table_entries")?,
            lengths: value.req("lengths")?.as_usize_list("lengths")?,
        })
    }
}

impl ScConfig {
    /// Validates the geometry.
    ///
    /// # Panics
    ///
    /// Panics on non-power-of-two table sizes or empty length lists.
    /// The non-panicking twin is [`ScConfig::check`].
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            // bp-lint: allow(panic-surface, "documented legacy panicking API; the validate-then-build path uses the non-panicking check()")
            panic!("{e}");
        }
    }

    /// Checks the geometry, returning the first violation instead of
    /// panicking.
    pub fn check(&self) -> Result<(), ConfigError> {
        if !(self.bias_entries.is_power_of_two() && self.table_entries.is_power_of_two()) {
            return Err("table sizes must be powers of two".into());
        }
        if self.bias_entries > 1 << 24 || self.table_entries > 1 << 24 {
            return Err("table sizes must be at most 2^24 entries".into());
        }
        if self.global_lengths.is_empty() {
            return Err("need global tables".into());
        }
        if self.global_lengths.len() > 64 {
            return Err("at most 64 global tables".into());
        }
        if !self.global_lengths.iter().all(|&l| (1..=64).contains(&l)) {
            return Err("global lengths must be in 1..=64".into());
        }
        if !(0..=1024).contains(&self.tage_weight) {
            return Err("tage_weight must be in 0..=1024".into());
        }
        if !(1..=7).contains(&self.counter_bits) {
            return Err("sc counter width must be in 1..=7".into());
        }
        if !(0..=self.threshold_max).contains(&self.threshold_init) {
            return Err("threshold_init must be in 0..=threshold_max".into());
        }
        if let Some(local) = &self.local {
            if !(local.history_entries.is_power_of_two() && local.table_entries.is_power_of_two()) {
                return Err("local table sizes must be powers of two".into());
            }
            if local.history_entries > 1 << 24 || local.table_entries > 1 << 24 {
                return Err("local table sizes must be at most 2^24 entries".into());
            }
            if local.lengths.is_empty() || local.lengths.len() > 64 {
                return Err("local tables must number 1..=64".into());
            }
            if !(1..=32).contains(&local.history_width) {
                return Err("local history width must be in 1..=32".into());
            }
            if !local
                .lengths
                .iter()
                .all(|&l| l >= 1 && l <= local.history_width)
            {
                return Err("local lengths must fit the history width".into());
            }
        }
        if let Some(imli) = &self.imli {
            imli.check()?;
        }
        Ok(())
    }

    /// Exact storage in bits of the built [`StatisticalCorrector`]: two
    /// bias tables, the global (and optional local) GEHL tables, the
    /// local history file, the IMLI structures, and the
    /// adaptive-threshold registers — the same itemization as
    /// [`StatisticalCorrector::storage_items`], computed from the
    /// configuration alone.
    pub fn storage_bits(&self) -> u64 {
        let cb = self.counter_bits as u64;
        let mut bits = 2 * self.bias_entries as u64 * cb;
        bits += self.global_lengths.len() as u64 * self.table_entries as u64 * cb;
        if let Some(local) = &self.local {
            bits += local.lengths.len() as u64 * local.table_entries as u64 * cb;
            bits += (local.history_entries * local.history_width) as u64;
        }
        if let Some(imli) = &self.imli {
            bits += imli.state_storage_bits();
        }
        // AdaptiveThreshold::storage_bits: θ register + 8-bit counter.
        bits += u64::from(32 - (self.threshold_max as u32).leading_zeros().min(31)) + 8;
        bits
    }

    /// Serializes as a [`ConfigValue`] object.
    pub fn to_value(&self) -> ConfigValue {
        ConfigValue::map()
            .set("bias_entries", ConfigValue::int(self.bias_entries))
            .set("table_entries", ConfigValue::int(self.table_entries))
            .set("counter_bits", ConfigValue::int(self.counter_bits))
            .set(
                "global_lengths",
                ConfigValue::int_list(&self.global_lengths),
            )
            .set("tage_weight", ConfigValue::Int(i64::from(self.tage_weight)))
            .set_opt("imli", self.imli.as_ref().map(imli::ImliConfig::to_value))
            .set(
                "imli_in_global_indices",
                ConfigValue::Bool(self.imli_in_global_indices),
            )
            .set_opt("local", self.local.as_ref().map(LocalScConfig::to_value))
            .set(
                "threshold_init",
                ConfigValue::Int(i64::from(self.threshold_init)),
            )
            .set(
                "threshold_max",
                ConfigValue::Int(i64::from(self.threshold_max)),
            )
    }

    /// Parses from a [`ConfigValue`] object (strict keys; absent `imli`
    /// / `local` mean "component not present").
    pub fn from_value(value: &ConfigValue) -> Result<Self, ConfigError> {
        value.expect_keys(
            "sc config",
            &[
                "bias_entries",
                "table_entries",
                "counter_bits",
                "global_lengths",
                "tage_weight",
                "imli",
                "imli_in_global_indices",
                "local",
                "threshold_init",
                "threshold_max",
            ],
        )?;
        Ok(ScConfig {
            bias_entries: value.req("bias_entries")?.as_usize("bias_entries")?,
            table_entries: value.req("table_entries")?.as_usize("table_entries")?,
            counter_bits: value.req("counter_bits")?.as_usize("counter_bits")?,
            global_lengths: value
                .req("global_lengths")?
                .as_usize_list("global_lengths")?,
            tage_weight: value.req("tage_weight")?.as_i32("tage_weight")?,
            imli: value
                .get("imli")
                .map(imli::ImliConfig::from_value)
                .transpose()?,
            imli_in_global_indices: value
                .req("imli_in_global_indices")?
                .as_bool("imli_in_global_indices")?,
            local: value
                .get("local")
                .map(LocalScConfig::from_value)
                .transpose()?,
            threshold_init: value.req("threshold_init")?.as_i32("threshold_init")?,
            threshold_max: value.req("threshold_max")?.as_i32("threshold_max")?,
        })
    }
}

/// The cached per-branch corrector state between `predict` and `update`.
#[derive(Debug, Clone, Copy)]
pub struct ScLookup {
    ctx: SumCtx,
    sum: i32,
    /// The corrector's final prediction (sign of the sum).
    pub pred: bool,
}

impl ScLookup {
    /// The summed corrector vote (including the weighted TAGE vote);
    /// its magnitude against the adaptive threshold is the corrector's
    /// confidence signal.
    pub fn sum(&self) -> i32 {
        self.sum
    }
}

/// Capacity of the corrector's per-branch gather buffers: two bias rows
/// plus at most 64 global and 64 local rows ([`ScConfig::check`] bounds
/// both), so the buffers are fixed-size stack arrays.
const SC_MAX_ADDENDS: usize = 2 + 64 + 64;

/// The statistical corrector stage. See the module docs.
///
/// The counter storage is banked ([`CounterBank`]): both bias tables in
/// one flat allocation, all global GEHL tables in another, all local
/// tables in a third. [`StatisticalCorrector::predict`] runs in two
/// phases over these banks — an *index phase* that computes every row
/// address into a fixed-size buffer, then a *gather phase* that reads
/// the selected counters into a flat `i8` buffer and reduces it with
/// the vector-friendly [`bp_components::sum_centered`] kernel. The phase split keeps
/// the address math and the dependent row reads in separate loops, and
/// the final reduction is a single fixed-stride kernel instead of a
/// chain of per-table reads.
#[derive(Debug, Clone)]
pub struct StatisticalCorrector {
    config: ScConfig,
    /// Table 0: the (pc, tage_pred) bias; table 1: the
    /// (pc, tage_pred, conf) bias.
    bias: CounterBank,
    global_tables: CounterBank,
    local_history: Option<LocalHistoryTable>,
    local_tables: Option<CounterBank>,
    imli: Option<ImliState>,
    threshold: AdaptiveThreshold,
    lookup: Option<ScLookup>,
    /// Row addresses computed by the index phase of
    /// [`StatisticalCorrector::predict`] (bias pair first, then
    /// globals, then locals). `update` trains through these instead of
    /// recomputing: they are the rows the paired prediction read.
    indices: [u64; SC_MAX_ADDENDS],
    /// Per-branch pure contexts captured by the pipelined front end
    /// ([`StatisticalCorrector::plan_row`]), one row per in-flight
    /// branch — snapshotted before the host advances the index inputs
    /// past the branch, completed with the TAGE verdict at commit time.
    plan_ctxs: Vec<SumCtx>,
    /// Planned history-indexed row addresses (globals then locals), one
    /// `plan_stride`-wide row per in-flight branch; the two bias rows
    /// depend on the commit-time TAGE verdict and are computed then.
    plans: Vec<u64>,
    plan_stride: usize,
    /// `(1 << global_lengths[i]) - 1` (saturating at 64 bits), hoisted
    /// out of the per-branch index phase.
    global_masks: Vec<u64>,
    /// `(1 << local.lengths[i]) - 1`, ditto.
    local_masks: Vec<u64>,
}

impl StatisticalCorrector {
    /// Builds a corrector from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`ScConfig::validate`].
    pub fn new(config: ScConfig) -> Self {
        config.validate();
        let cb = config.counter_bits;
        StatisticalCorrector {
            bias: CounterBank::new(2, config.bias_entries, cb),
            global_tables: CounterBank::new(config.global_lengths.len(), config.table_entries, cb),
            local_history: config
                .local
                .as_ref()
                .map(|l| LocalHistoryTable::new(l.history_entries, l.history_width)),
            local_tables: config
                .local
                .as_ref()
                .map(|l| CounterBank::new(l.lengths.len(), l.table_entries, cb)),
            imli: config.imli.as_ref().map(ImliState::new),
            threshold: AdaptiveThreshold::new(config.threshold_init, config.threshold_max),
            lookup: None,
            indices: [0; SC_MAX_ADDENDS],
            plan_ctxs: vec![SumCtx::default(); MAX_PIPELINE_DEPTH],
            plans: vec![
                0u64;
                MAX_PIPELINE_DEPTH
                    * (config.global_lengths.len()
                        + config.local.as_ref().map_or(0, |l| l.lengths.len()))
            ],
            plan_stride: config.global_lengths.len()
                + config.local.as_ref().map_or(0, |l| l.lengths.len()),
            global_masks: config
                .global_lengths
                .iter()
                .map(|&len| {
                    if len >= 64 {
                        u64::MAX
                    } else {
                        (1u64 << len) - 1
                    }
                })
                .collect(),
            local_masks: config.local.as_ref().map_or_else(Vec::new, |l| {
                l.lengths.iter().map(|&len| (1u64 << len) - 1).collect()
            }),
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ScConfig {
        &self.config
    }

    /// Read-only access to the embedded IMLI state, when configured.
    pub fn imli(&self) -> Option<&ImliState> {
        self.imli.as_ref()
    }

    /// Erases the corrector's history state (a context-switch flush):
    /// the per-branch local histories and the IMLI fetch-engine state
    /// (counter + PIPE). Learned structures — bias/global/local counter
    /// banks, the adaptive threshold, the outer-history bit table and
    /// SIC/OH tables — survive, per the flush contract of
    /// `ConditionalPredictor::flush_history`. Allocation-free.
    pub fn flush_history(&mut self) {
        if let Some(lh) = &mut self.local_history {
            lh.clear();
        }
        if let Some(imli) = &mut self.imli {
            imli.flush_history();
        }
    }

    #[inline]
    fn global_index(&self, i: usize, ctx: &SumCtx) -> u64 {
        let hist = ctx.ghist & self.global_masks[i];
        let mut v = pc_bits(ctx.pc) ^ mix64(hist ^ ((i as u64 + 1) << 57)) ^ (ctx.path & 0xFF);
        if self.config.imli_in_global_indices && i < 2 {
            v ^= ImliSic::index(0, ctx.imli_count);
        }
        v
    }

    #[inline]
    fn local_index(&self, i: usize, ctx: &SumCtx) -> u64 {
        let hist = u64::from(ctx.local_history) & self.local_masks[i];
        pc_bits(ctx.pc) ^ mix64(hist.rotate_left(i as u32 * 11) ^ ((i as u64 + 1) << 49))
    }

    /// Issues read prefetches for the corrector rows of `pc` that are
    /// addressable from the PC alone (the two bias rows). A pure hint
    /// for the simulator's one-branch lookahead; the history-indexed
    /// rows are skipped because their addresses change with the
    /// in-flight branch.
    pub fn prefetch(&self, pc: u64, tage_pred: bool) {
        self.bias
            .prefetch(0, (pc_bits(pc) << 1) | u64::from(tage_pred));
        self.bias.prefetch(1, pc_bits(pc) << 2);
    }

    /// Computes the corrector sum and prediction for `pc`.
    ///
    /// `ghist`/`path` come from the host's history state; `tage_pred` and
    /// `tage_conf_low` from the TAGE lookup. The lookup is cached for the
    /// matching [`StatisticalCorrector::update`].
    ///
    /// Two-phase over the counter banks: the index phase fills a
    /// fixed-size `(bank row, index)` buffer, the gather phase reads
    /// every selected counter into a flat `i8` buffer, and the
    /// [`bp_components::sum_centered`] kernel reduces it. The kernel computes
    /// `Σ(2c+1)` as `2·Σc + n` in exact i32 arithmetic, so the sum is
    /// bit-identical to the per-table read chain it replaces.
    pub fn predict(
        &mut self,
        pc: u64,
        tage_pred: bool,
        tage_conf_low: bool,
        ghist: u64,
        path: u64,
    ) -> ScLookup {
        let mut ctx = self.make_ctx(pc, ghist, path);
        ctx.main_pred = tage_pred;
        ctx.main_conf_low = tage_conf_low;

        // Index phase for the history-indexed rows: every address, no
        // table reads yet. The addresses are stashed on the struct so
        // the paired `update` can train through them without
        // recomputing.
        let n_global = self.config.global_lengths.len();
        for i in 0..n_global {
            self.indices[2 + i] = self.global_index(i, &ctx);
        }
        let n_local = self.local_tables.as_ref().map_or(0, CounterBank::tables);
        for i in 0..n_local {
            self.indices[2 + n_global + i] = self.local_index(i, &ctx);
        }
        self.finish_predict(ctx)
    }

    /// The pure per-branch context of `pc`: everything the corrector's
    /// history-indexed rows and IMLI addends depend on, minus the
    /// commit-time TAGE verdict (`main_pred`/`main_conf_low`, patched in
    /// by the caller). One function behind the scalar predict and the
    /// pipelined [`StatisticalCorrector::plan_row`], which differ only
    /// in *when* they capture it.
    #[inline]
    fn make_ctx(&self, pc: u64, ghist: u64, path: u64) -> SumCtx {
        let mut ctx = SumCtx {
            pc,
            ghist,
            path,
            ..SumCtx::default()
        };
        if let Some(lh) = &self.local_history {
            ctx.local_history = lh.history(pc);
        }
        if let Some(imli) = &self.imli {
            imli.fill_ctx(&mut ctx);
        }
        ctx
    }

    /// Front-end step of the pipelined drive for one in-flight branch:
    /// snapshots the pure context into row `row`, computes the
    /// history-indexed row addresses into the plan scratch, and issues
    /// read prefetches for them. The host advances the index inputs
    /// (local histories, IMLI state) past the branch afterwards via
    /// [`StatisticalCorrector::observe`]; the commit loop completes the
    /// prediction with [`StatisticalCorrector::predict_planned`] once
    /// the TAGE verdict is known.
    #[inline]
    pub fn plan_row(&mut self, row: usize, pc: u64, ghist: u64, path: u64) {
        let ctx = self.make_ctx(pc, ghist, path);
        let n_global = self.config.global_lengths.len();
        let base = row * self.plan_stride;
        for i in 0..n_global {
            let idx = self.global_index(i, &ctx);
            self.plans[base + i] = idx;
            self.global_tables.prefetch(i, idx);
        }
        if let Some(local) = &self.local_tables {
            for i in 0..local.tables() {
                let idx = self.local_index(i, &ctx);
                self.plans[base + n_global + i] = idx;
                local.prefetch(i, idx);
            }
        }
        self.plan_ctxs[row] = ctx;
    }

    /// Back-end half of the pipelined drive: completes the plan of row
    /// `row` with the commit-time TAGE verdict and finishes the
    /// prediction exactly like [`StatisticalCorrector::predict`]. The
    /// index inputs have already run ahead, so the plan-time snapshot is
    /// the *only* source of the pure context here.
    #[inline]
    pub fn predict_planned(
        &mut self,
        row: usize,
        tage_pred: bool,
        tage_conf_low: bool,
    ) -> ScLookup {
        let mut ctx = self.plan_ctxs[row];
        ctx.main_pred = tage_pred;
        ctx.main_conf_low = tage_conf_low;
        let n = self.plan_stride;
        let base = row * n;
        self.indices[2..2 + n].copy_from_slice(&self.plans[base..base + n]);
        self.finish_predict(ctx)
    }

    /// Shared prediction tail over the stashed history-indexed
    /// addresses: bias addressing (a pure function of the context and
    /// the TAGE verdict), gather, reduction, IMLI addends, and the
    /// `lookup` stash for the paired `update`.
    #[inline]
    fn finish_predict(&mut self, ctx: SumCtx) -> ScLookup {
        let n_global = self.config.global_lengths.len();
        let n_local = self.local_tables.as_ref().map_or(0, CounterBank::tables);
        let pcb = pc_bits(ctx.pc);
        self.indices[0] = (pcb << 1) | u64::from(ctx.main_pred);
        self.indices[1] =
            (pcb << 2) | (u64::from(ctx.main_pred) << 1) | u64::from(ctx.main_conf_low);

        // Gather phase: read the selected counters into a flat buffer.
        let mut values = [0i8; SC_MAX_ADDENDS];
        self.bias.gather(&self.indices[..2], &mut values[..2]);
        self.global_tables
            .gather(&self.indices[2..2 + n_global], &mut values[2..2 + n_global]);
        if let Some(local) = &self.local_tables {
            local.gather(
                &self.indices[2 + n_global..2 + n_global + n_local],
                &mut values[2 + n_global..2 + n_global + n_local],
            );
        }

        let mut sum = self.config.tage_weight * (2 * i32::from(ctx.main_pred) - 1);
        sum += sum_centered_padded(&values, 2 + n_global + n_local);
        if let Some(imli) = &self.imli {
            sum += imli.read(&ctx);
        }

        let lookup = ScLookup {
            ctx,
            sum,
            pred: sum >= 0,
        };
        self.lookup = Some(lookup);
        lookup
    }

    /// Trains the corrector with the resolved outcome. Must follow a
    /// [`StatisticalCorrector::predict`] for the same branch.
    ///
    /// # Panics
    ///
    /// Panics if no prediction is pending.
    pub fn update(&mut self, taken: bool) {
        // bp-lint: allow(panic-surface, "CBP protocol contract: update() without a pending predict() is caller error, not data-dependent")
        let lookup = self.lookup.take().expect("update without pending predict");
        let ctx = lookup.ctx;
        let mispredicted = lookup.pred != taken;
        let sum_abs = lookup.sum.abs();
        if self.threshold.should_update(sum_abs, mispredicted) {
            // Train through the indices stashed by the paired predict:
            // they are the rows the prediction actually read.
            self.bias.train_all(&self.indices[..2], taken);
            let n_global = self.global_tables.tables();
            self.global_tables
                .train_all(&self.indices[2..2 + n_global], taken);
            if let Some(local) = &mut self.local_tables {
                let n_local = local.tables();
                local.train_all(&self.indices[2 + n_global..2 + n_global + n_local], taken);
            }
            if let Some(imli) = &mut self.imli {
                imli.train(&ctx, taken);
            }
        }
        self.threshold.adapt(sum_abs, mispredicted);
    }

    /// Observes the resolved branch record: advances the IMLI state and
    /// the local history. Call once per branch, after `update`.
    pub fn observe(&mut self, record: &BranchRecord) {
        if let Some(imli) = &mut self.imli {
            imli.observe(record);
        }
        if record.is_conditional() {
            if let Some(lh) = &mut self.local_history {
                lh.update(record.pc, record.taken);
            }
        }
    }

    /// The current adaptive update threshold θ (the corrector's
    /// confidence yardstick).
    pub fn theta(&self) -> i32 {
        self.threshold.theta()
    }

    /// Storage in bits across every configured structure.
    pub fn storage_bits(&self) -> u64 {
        self.storage_items().iter().map(|i| i.bits).sum()
    }

    /// Itemized storage: bias tables, global/local GEHL tables, local
    /// histories, IMLI structures, and the adaptive-threshold registers.
    pub fn storage_items(&self) -> Vec<StorageItem> {
        let mut items = vec![
            StorageItem::new("bias[0]", self.bias.table_storage_bits()),
            StorageItem::new("bias[1]", self.bias.table_storage_bits()),
        ];
        for i in 0..self.global_tables.tables() {
            items.push(StorageItem::new(
                format!("global[{i}]"),
                self.global_tables.table_storage_bits(),
            ));
        }
        if let Some(local) = &self.local_tables {
            for i in 0..local.tables() {
                items.push(StorageItem::new(
                    format!("local[{i}]"),
                    local.table_storage_bits(),
                ));
            }
        }
        if let Some(lh) = &self.local_history {
            items.push(StorageItem::new("local-history", lh.storage_bits()));
        }
        if let Some(imli) = &self.imli {
            items.extend(imli.storage_items());
        }
        items.push(StorageItem::new("threshold", self.threshold.storage_bits()));
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(sc: &mut StatisticalCorrector, pc: u64, tage_pred: bool, taken: bool) -> bool {
        let l = sc.predict(pc, tage_pred, false, 0, 0);
        sc.update(taken);
        sc.observe(&BranchRecord::conditional(pc, pc + 0x40, taken));
        l.pred
    }

    #[test]
    fn follows_tage_when_tage_is_right() {
        let mut sc = StatisticalCorrector::new(ScConfig::default());
        for _ in 0..200 {
            drive(&mut sc, 0x40, true, true);
        }
        let l = sc.predict(0x40, true, false, 0, 0);
        assert!(l.pred);
        sc.update(true);
    }

    #[test]
    fn reverts_tage_when_tage_is_statistically_wrong() {
        // TAGE always predicts taken, outcome is always not-taken: the
        // corrector must learn to revert.
        let mut sc = StatisticalCorrector::new(ScConfig::default());
        for _ in 0..400 {
            drive(&mut sc, 0x40, true, false);
        }
        let l = sc.predict(0x40, true, false, 0, 0);
        assert!(!l.pred, "corrector failed to revert, sum = {}", l.sum);
        sc.update(false);
    }

    #[test]
    fn imli_component_fixes_same_iteration_branch() {
        // Branch outcome depends only on the IMLI count; TAGE (simulated
        // here as always-wrong 50/50 via alternating pred) cannot help,
        // the SIC table can.
        let cfg = ScConfig {
            imli: Some(ImliConfig::default()),
            ..ScConfig::default()
        };
        cfg.validate();
        let mut sc = StatisticalCorrector::new(cfg);
        let body = 0x4008u64;
        let back = BranchRecord::conditional(0x4010, 0x4000, true);
        let exit = BranchRecord::conditional(0x4010, 0x4000, false);
        let mut correct = 0;
        let mut total = 0;
        for n in 0..300 {
            for m in 0..8u32 {
                let taken = m % 2 == 0; // depends on inner iteration only
                let l = sc.predict(body, n % 2 == 0, false, 0, 0);
                if n > 100 {
                    total += 1;
                    correct += u32::from(l.pred == taken);
                }
                sc.update(taken);
                sc.observe(&BranchRecord::conditional(body, body + 0x40, taken));
                sc.observe(if m < 7 { &back } else { &exit });
            }
        }
        let acc = f64::from(correct) / f64::from(total);
        assert!(acc > 0.9, "IMLI-SIC in SC should fix this, got {acc:.3}");
    }

    #[test]
    fn local_component_fixes_periodic_branch() {
        let cfg = ScConfig {
            local: Some(LocalScConfig::default()),
            tage_weight: 2,
            ..ScConfig::default()
        };
        let mut sc = StatisticalCorrector::new(cfg);
        let pc = 0x90;
        let mut correct = 0;
        let mut total = 0;
        for i in 0..4000u64 {
            let taken = i % 5 < 2;
            // TAGE deliberately unhelpful: always predicts taken.
            let l = sc.predict(pc, true, true, 0, 0);
            if i > 2000 {
                total += 1;
                correct += u64::from(l.pred == taken);
            }
            sc.update(taken);
            sc.observe(&BranchRecord::conditional(pc, pc + 0x40, taken));
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.9, "local SC should fix period-5, got {acc:.3}");
    }

    #[test]
    fn storage_accounting_tracks_configuration() {
        let base = StatisticalCorrector::new(ScConfig::default()).storage_bits();
        let with_imli = StatisticalCorrector::new(ScConfig {
            imli: Some(ImliConfig::default()),
            ..ScConfig::default()
        })
        .storage_bits();
        let with_local = StatisticalCorrector::new(ScConfig {
            local: Some(LocalScConfig::default()),
            ..ScConfig::default()
        })
        .storage_bits();
        // IMLI adds its ~708-byte budget (minus packaging rounding).
        assert_eq!(with_imli - base, 10 + 3072 + 1536 + 1024 + 16);
        // Local adds 256*16 + 4*1024*6 = 28672 bits ≈ 28 Kbit.
        assert_eq!(with_local - base, 256 * 16 + 4 * 1024 * 6);
    }

    #[test]
    #[should_panic(expected = "update without pending predict")]
    fn update_requires_predict() {
        let mut sc = StatisticalCorrector::new(ScConfig::default());
        sc.update(true);
    }
}
