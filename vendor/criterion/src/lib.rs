//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim implements the API subset the workspace's benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! [`BenchmarkGroup::throughput`] / [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! It is a *measuring* shim, not a statistical one: each benchmark runs
//! a warm-up pass and `sample_size` timed iterations, then prints the
//! mean wall-clock time per iteration (and throughput when configured).
//! There is no outlier analysis, no HTML report, and no saved baseline.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// How [`Bencher::iter_batched`] amortizes setup (accepted for API
/// compatibility; the shim always re-runs setup per iteration, outside
/// the timed section).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id carrying a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Drives the timed closure of one benchmark.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    fn with_samples(target_samples: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            target_samples,
        }
    }

    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine()); // warm-up, untimed
        for _ in 0..self.target_samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` over per-iteration inputs built by `setup`
    /// (setup runs outside the timed section).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup())); // warm-up, untimed
        for _ in 0..self.target_samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.iter().sum::<Duration>() / self.samples.len() as u32
    }
}

fn report(label: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let mean = bencher.mean();
    let mut line = format!(
        "{label:<40} {:>12.3} µs/iter ({} samples)",
        mean.as_secs_f64() * 1e6,
        bencher.samples.len()
    );
    if let Some(tp) = throughput {
        let secs = mean.as_secs_f64().max(1e-12);
        match tp {
            Throughput::Elements(n) => {
                line.push_str(&format!("  {:>10.2} Melem/s", n as f64 / secs / 1e6));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!(
                    "  {:>10.2} MiB/s",
                    n as f64 / secs / (1 << 20) as f64
                ));
            }
        }
    }
    println!("{line}");
}

/// The top-level harness handle.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::with_samples(self.sample_size);
        f(&mut bencher);
        report(name, &bencher, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_owned(),
            sample_size,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::with_samples(self.sample_size);
        f(&mut bencher);
        report(&format!("{}/{name}", self.name), &bencher, self.throughput);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::with_samples(self.sample_size);
        f(&mut bencher, input);
        report(&format!("{}/{id}", self.name), &bencher, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, with an optional custom
/// [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // Warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn groups_and_batched_iteration() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2).throughput(Throughput::Elements(10));
        let mut built = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter("x"), "x", |b, _| {
            b.iter_batched(
                || {
                    built += 1;
                },
                |()| (),
                BatchSize::LargeInput,
            )
        });
        group.finish();
        assert_eq!(built, 3);
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }
}
