//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim implements exactly the API subset the workspace uses:
//!
//! * [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen_bool`] and [`Rng::gen_range`] over integer and float
//!   ranges (half-open and inclusive).
//!
//! The generator is xoshiro256** seeded through SplitMix64 — a
//! high-quality, deterministic PRNG. It does **not** reproduce the
//! stream of the real `rand::rngs::StdRng` (ChaCha12); all workloads in
//! this workspace only require determinism *within* one build of the
//! workspace, which this provides.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Deterministically seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing random value API (subset).
pub trait Rng {
    /// The core source of randomness: the next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        // 53 uniform mantissa bits, exactly like rand's standard float
        // conversion.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> T;
}

/// Uniform integer draw in `[0, span)` without modulo bias (Lemire's
/// multiply-shift rejection method).
fn uniform_below<G: Rng + ?Sized>(rng: &mut G, span: u128) -> u128 {
    debug_assert!(span > 0 && span <= u64::MAX as u128 + 1);
    if span == u64::MAX as u128 + 1 {
        return rng.next_u64() as u128;
    }
    let span = span as u64;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let low = m as u64;
        if low >= span.wrapping_neg() % span {
            return m >> 64;
        }
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty gen_range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for rand's
    /// `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(4u32..=32);
            assert!((4..=32).contains(&x));
            let y: usize = rng.gen_range(0usize..7);
            assert!(y < 7);
            let f: f64 = rng.gen_range(-0.25f64..=0.25);
            assert!((-0.25..=0.25).contains(&f));
            let i: i64 = rng.gen_range(-10i64..10);
            assert!((-10..10).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn full_and_single_spans() {
        let mut rng = StdRng::seed_from_u64(9);
        let _: u64 = rng.gen_range(0u64..=u64::MAX);
        assert_eq!(rng.gen_range(5u32..6), 5);
        assert_eq!(rng.gen_range(5u32..=5), 5);
    }
}
