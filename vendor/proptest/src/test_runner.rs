//! Configuration, case-level errors, and the deterministic test RNG.

use std::fmt;

/// Per-test configuration (subset of proptest's `Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case (carries the assertion message).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure from a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic per-case generator (xoshiro256**, SplitMix64-seeded).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// The generator for one case index: deterministic, so a reported
    /// failing case number fully reproduces the inputs.
    pub fn for_case(case: u32) -> Self {
        let mut sm = 0x5EED_CAFE_0000_0000u64 ^ u64::from(case);
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform draw in `[0, span)` (Lemire rejection; `span > 0`).
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (span as u128);
            if (m as u64) >= span.wrapping_neg() % span {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
