//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with a length drawn from a range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// A vector of values from `element`, with length in `len`
/// (mirrors `proptest::collection::vec`).
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start) as u64;
        let len = self.len.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_elements_in_bounds() {
        let s = vec(0u32..100, 3..9);
        let mut rng = TestRng::for_case(0);
        for _ in 0..200 {
            let v = s.gen_value(&mut rng);
            assert!((3..9).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 100));
        }
    }
}
