//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Types with a canonical "any value" strategy (proptest's
/// `Arbitrary`).
pub trait ArbitraryValue: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

/// An unconstrained value of `T` (mirrors `proptest::prelude::any`).
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-balanced, wide dynamic range.
        let unit = rng.unit_f64() - 0.5;
        let scale = (rng.below(61) as i32 - 30) as f64;
        unit * 10f64.powi(scale.clamp(-30.0, 30.0) as i32)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, usize, i8, i16, i32, i64, isize);

// u64 needs its own inclusive impl to dodge span overflow on the full
// domain.
impl Strategy for Range<u64> {
    type Value = u64;

    fn gen_value(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for RangeInclusive<u64> {
    type Value = u64;

    fn gen_value(&self, rng: &mut TestRng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        if lo == 0 && hi == u64::MAX {
            return rng.next_u64();
        }
        lo + rng.below(hi - lo + 1)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.gen_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / a);
impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);

/// String strategy from a pattern literal. Supports the
/// `[characters]{lo,hi}` shape (with `a-z` ranges inside the class)
/// that proptest accepts as a regex; anything else panics so a silent
/// mis-generation cannot slip through.
impl Strategy for &'static str {
    type Value = String;

    fn gen_value(&self, rng: &mut TestRng) -> String {
        let (class, lo, span) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string pattern {self:?}"));
        let len = lo + rng.below(span + 1) as usize;
        (0..len)
            .map(|_| class[rng.below(class.len() as u64) as usize])
            .collect()
    }
}

/// Parses `[class]{lo,hi}` into (expanded class, lo, hi).
fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, u64)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let (class_src, reps) = rest.split_at(close);
    let reps = reps
        .strip_prefix(']')?
        .strip_prefix('{')?
        .strip_suffix('}')?;
    let (lo, hi) = reps.split_once(',')?;
    let (lo, hi): (usize, usize) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);
    if hi < lo {
        return None;
    }
    let chars: Vec<char> = class_src.chars().collect();
    let mut class = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            for c in chars[i]..=chars[i + 2] {
                class.push(c);
            }
            i += 3;
        } else {
            class.push(chars[i]);
            i += 1;
        }
    }
    if class.is_empty() {
        return None;
    }
    Some((class, lo, (hi - lo) as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_pattern_expansion() {
        let (class, lo, span) = parse_class_pattern("[a-c9 _-]{0,40}").unwrap();
        assert_eq!(class, vec!['a', 'b', 'c', '9', ' ', '_', '-']);
        assert_eq!(lo, 0);
        assert_eq!(span, 40);
        assert!(parse_class_pattern("plain").is_none());
    }

    #[test]
    fn string_strategy_respects_class_and_length() {
        let mut rng = TestRng::for_case(0);
        for _ in 0..200 {
            let s = "[ab]{2,5}".gen_value(&mut rng);
            assert!((2..=5).contains(&s.len()));
            assert!(s.chars().all(|c| c == 'a' || c == 'b'));
        }
    }

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::for_case(1);
        for _ in 0..500 {
            let (a, b, c) = (0u8..5, 1usize..=7, -1.5f64..=1.5).gen_value(&mut rng);
            assert!(a < 5);
            assert!((1..=7).contains(&b));
            assert!((-1.5..=1.5).contains(&c));
        }
    }

    #[test]
    fn prop_map_applies() {
        let s = (0u32..10).prop_map(|x| x * 2);
        let mut rng = TestRng::for_case(2);
        for _ in 0..100 {
            let v = s.gen_value(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
    }
}
