//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim implements the API subset the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(...)]`), generating `#[test]` functions that
//!   run each property over many generated cases;
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * strategies: integer/float ranges, `any::<T>()`, tuples,
//!   [`collection::vec`], `prop_map`, and simple `[class]{lo,hi}`
//!   string patterns;
//! * [`test_runner::ProptestConfig::with_cases`].
//!
//! Unlike real proptest there is **no shrinking**: a failing case
//! reports its case number and seed so it can be reproduced (generation
//! is fully deterministic per case index).

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the current
/// case (not the whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    l,
                    r
                ),
            ));
        }
    }};
}

/// Declares property tests: each `fn name(binding in strategy, ...)`
/// becomes a `#[test]` running the body over many generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    { ($config:expr) } => {};
    {
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    } => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(case);
                $(let $arg = $crate::strategy::Strategy::gen_value(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!("property failed at case {case}/{}: {e}", config.cases);
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}
