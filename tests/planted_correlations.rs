//! Cross-crate integration tests: each planted correlation is fixed by
//! exactly the component the paper says should fix it.
//!
//! These are the functional heart of the reproduction: they check *which
//! component captures which branch class*, the mapping the whole paper
//! is about, end-to-end through trace generation → composed predictors.

use imli_repro::sim::{make_predictor, simulate};
use imli_repro::trace::Trace;
use imli_repro::workloads::{find_benchmark, generate};

const BUDGET: u64 = 250_000;

fn mpki(config: &str, trace: &Trace) -> f64 {
    let mut p = make_predictor(config).expect("registered config");
    simulate(p.as_mut(), trace).mpki()
}

fn flagship(name: &str) -> Trace {
    generate(&find_benchmark(name).expect("flagship exists"), BUDGET)
}

/// SPEC2K6-04: same-iteration correlation under variable trip counts.
/// IMLI-SIC must capture it; the wormhole predictor structurally cannot
/// (§4.2.2: "benchmarks that were not improved by the WH predictor").
#[test]
fn sic_fixes_variable_trip_same_iteration_and_wh_does_not() {
    let trace = flagship("SPEC2K6-04");
    let base = mpki("tage-gsc", &trace);
    let sic = mpki("tage-gsc+sic", &trace);
    let wh = mpki("tage-gsc+wh", &trace);
    assert!(
        sic < base * 0.85,
        "SIC must cut SPEC2K6-04 substantially: {base:.3} -> {sic:.3}"
    );
    assert!(
        wh > base * 0.95,
        "WH must NOT fix SPEC2K6-04: {base:.3} -> {wh:.3}"
    );
}

/// SPEC2K6-12: the diagonal correlation Out[N][M] = Out[N-1][M-1] in a
/// constant-trip nest. Both WH and IMLI-OH capture it (§4.3); IMLI-SIC
/// does not (every iteration slot changes every outer iteration).
#[test]
fn oh_and_wh_fix_diagonal_and_sic_does_not() {
    let trace = flagship("SPEC2K6-12");
    let base = mpki("tage-gsc", &trace);
    let sic = mpki("tage-gsc+sic", &trace);
    let oh = mpki("tage-gsc+oh", &trace);
    let wh = mpki("tage-gsc+wh", &trace);
    assert!(
        oh < base * 0.85,
        "OH must fix the diagonal: {base:.3} -> {oh:.3}"
    );
    assert!(
        wh < base * 0.9,
        "WH must fix the diagonal: {base:.3} -> {wh:.3}"
    );
    assert!(
        sic > base * 0.9,
        "SIC alone must not fix the diagonal: {base:.3} -> {sic:.3}"
    );
}

/// MM-4: the inverted correlation Out[N][M] = ¬Out[N-1][M]. IMLI-OH
/// learns the inversion through its outcome-indexed counters; the gain
/// over SIC alone must be visible (§4.3: "correlations of the form
/// Out[N][M] ≡ 1-Out[N-1][M] are missed by IMLI-SIC").
#[test]
fn oh_learns_inversion_better_than_sic() {
    let trace = flagship("MM-4");
    let base = mpki("tage-gsc", &trace);
    let sic = mpki("tage-gsc+sic", &trace);
    let oh = mpki("tage-gsc+oh", &trace);
    assert!(oh < base * 0.8, "OH must fix MM-4: {base:.3} -> {oh:.3}");
    assert!(
        oh < sic,
        "OH must beat SIC on the inverted nest: {oh:.3} vs {sic:.3}"
    );
}

/// WS04: nested-conditional + variable-trip same-iteration content.
/// IMLI-SIC captures it, WH cannot (§4.2.2's two structural
/// limitations at once).
#[test]
fn sic_fixes_nested_conditionals_and_wh_does_not() {
    let trace = flagship("WS04");
    let base = mpki("tage-gsc", &trace);
    let sic = mpki("tage-gsc+sic", &trace);
    let wh = mpki("tage-gsc+wh", &trace);
    assert!(sic < base * 0.9, "SIC must fix WS04: {base:.3} -> {sic:.3}");
    assert!(
        wh > base * 0.95,
        "WH must not fix WS04: {base:.3} -> {wh:.3}"
    );
}

/// CLIENT02 (CBP3): the second diagonal flagship; IMLI-OH must roughly
/// match WH there (Figure 13's message: OH subsumes WH).
#[test]
fn oh_matches_wh_on_client02() {
    let trace = flagship("CLIENT02");
    let base = mpki("gehl", &trace);
    let oh = mpki("gehl+oh", &trace);
    let wh = mpki("gehl+wh", &trace);
    assert!(
        oh < base * 0.9,
        "OH must fix CLIENT02: {base:.3} -> {oh:.3}"
    );
    assert!(
        oh < wh * 1.1,
        "OH must be competitive with WH: {oh:.3} vs {wh:.3}"
    );
}

/// The full IMLI configuration must help both hosts on both flagship
/// classes simultaneously (Figures 8-11's aggregate message).
#[test]
fn imli_helps_both_hosts_on_both_flagships() {
    for bench in ["SPEC2K6-04", "SPEC2K6-12"] {
        let trace = flagship(bench);
        for (base, imli) in [("tage-gsc", "tage-gsc+imli"), ("gehl", "gehl+imli")] {
            let b = mpki(base, &trace);
            let i = mpki(imli, &trace);
            assert!(
                i < b * 0.9,
                "{imli} must beat {base} on {bench}: {b:.3} -> {i:.3}"
            );
        }
    }
}

/// A generic benchmark without planted IMLI correlations must be left
/// essentially unchanged by the IMLI components (Figures 8/10: "most of
/// the other benchmarks remain mostly unchanged") — no collateral
/// damage.
#[test]
fn imli_is_harmless_on_generic_benchmarks() {
    for bench in ["SPEC2K6-02", "FP01"] {
        let trace = flagship(bench);
        let base = mpki("tage-gsc", &trace);
        let imli = mpki("tage-gsc+imli", &trace);
        assert!(
            (imli - base).abs() < base * 0.12 + 0.15,
            "{bench}: IMLI must be ~neutral ({base:.3} -> {imli:.3})"
        );
    }
}
