//! Cross-crate tests of the paper's hardware-complexity claims:
//! checkpoint sizes, storage budgets, and the delayed-update tolerance.

use imli_repro::imli::{ImliConfig, ImliState};
use imli_repro::sim::{make_predictor, simulate, speculative_imli_fidelity};
use imli_repro::tage::{TageSc, TageScConfig};
use imli_repro::workloads::{find_benchmark, generate, quick_benchmark};

/// §4.4: the two IMLI components cost 708 bytes; the checkpoint is
/// 26 bits.
#[test]
fn imli_budget_is_708_bytes_and_checkpoint_26_bits() {
    let config = ImliConfig::default();
    assert_eq!(config.storage_bits(), 708 * 8);
    assert_eq!(config.checkpoint_bits(), 26);
    let state = ImliState::new(&config);
    assert_eq!(state.checkpoint_bits(), 26);
}

/// Table 1/2 deltas: +I adds ~6 Kbit (708 B) to either host, +L adds
/// an order of magnitude more.
#[test]
fn host_budget_deltas_match_the_paper_shape() {
    let bits = |name: &str| make_predictor(name).expect("registered").storage_bits() as f64;
    let imli_delta_tage = bits("tage-gsc+imli") - bits("tage-gsc");
    let imli_delta_gehl = bits("gehl+imli") - bits("gehl");
    // Both hosts pay the same ~708-byte IMLI budget (±packaging).
    assert!(
        (imli_delta_tage - 708.0 * 8.0).abs() < 600.0,
        "{imli_delta_tage}"
    );
    assert!(
        (imli_delta_gehl - 708.0 * 8.0).abs() < 600.0,
        "{imli_delta_gehl}"
    );
    let local_delta_tage = bits("tage-sc-l") - bits("tage-gsc");
    let local_delta_gehl = bits("ftl") - bits("gehl");
    assert!(local_delta_tage > 4.0 * imli_delta_tage);
    assert!(local_delta_gehl > 4.0 * imli_delta_gehl);
}

/// §4.2.1/§4.3.2: checkpoint repair is exact over every suite flavour.
#[test]
fn speculation_repair_is_exact_across_benchmarks() {
    for bench in ["SPEC2K6-12", "WS04", "MM-4"] {
        let trace = generate(&find_benchmark(bench).expect("exists"), 100_000);
        let report = speculative_imli_fidelity(&trace, &ImliConfig::default(), 29, 40);
        assert_eq!(report.divergences, 0, "{bench}: {report}");
    }
}

/// §4.3.2: a 63-branch commit delay on the outer-history table costs
/// (virtually) nothing — far less than the IMLI gain itself.
#[test]
fn delayed_outer_history_update_is_harmless() {
    let trace = quick_benchmark("delayed-oh", 0xD0, 400_000);
    let mut immediate = TageSc::tage_gsc_imli();
    let immediate_mpki = simulate(&mut immediate, &trace).mpki();
    let mut delayed =
        TageSc::new(TageScConfig::gsc_imli().with_imli(ImliConfig::delayed_update(63), "d63"));
    let delayed_mpki = simulate(&mut delayed, &trace).mpki();
    let mut base = TageSc::tage_gsc();
    let base_mpki = simulate(&mut base, &trace).mpki();
    let gain = base_mpki - immediate_mpki;
    let cost = (delayed_mpki - immediate_mpki).abs();
    assert!(gain > 0.0, "IMLI must help this workload");
    assert!(
        cost < gain * 0.25,
        "63-branch delay must be nearly free: cost {cost:.4} vs gain {gain:.4}"
    );
}

/// The composed predictors expose exactly the checkpoint the paper
/// describes (only IMLI configurations have one).
#[test]
fn composed_predictors_surface_the_imli_checkpoint() {
    assert!(TageSc::tage_gsc().imli_checkpoint().is_none());
    let with = TageSc::tage_gsc_imli();
    let cp = with
        .imli_checkpoint()
        .expect("IMLI config has a checkpoint");
    assert_eq!(cp.counter(), 0, "fresh predictor starts at iteration 0");
}
