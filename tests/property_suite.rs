//! Workspace-level property tests: no predictor panics, loses
//! determinism, or mismanages state on arbitrary branch streams.

use imli_repro::imli::{ImliConfig, ImliState};
use imli_repro::sim::registry;
use imli_repro::trace::{BranchKind, BranchRecord};
use proptest::prelude::*;

/// Builds an arbitrary but structurally valid branch record.
fn arb_record() -> impl Strategy<Value = BranchRecord> {
    (0u64..2048, 0u64..2048, 0u8..5, any::<bool>(), 0u32..20).prop_map(
        |(pc_sel, tgt_sel, kind, taken, lead)| {
            let kind = BranchKind::from_code(kind).expect("in range");
            BranchRecord {
                pc: 0x1000 + pc_sel * 4,
                target: 0x800 + tgt_sel * 4,
                kind,
                taken: taken || !kind.is_conditional(),
                leading_instructions: lead,
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every registered predictor survives arbitrary branch streams
    /// (predict/update for conditionals, notify for the rest) without
    /// panicking, and stays deterministic against a twin.
    #[test]
    fn predictors_never_panic_and_stay_deterministic(
        records in proptest::collection::vec(arb_record(), 1..400)
    ) {
        for spec in registry() {
            let mut a = spec.make();
            let mut b = spec.make();
            for r in &records {
                if r.is_conditional() {
                    let pa = a.predict(r.pc);
                    let pb = b.predict(r.pc);
                    prop_assert_eq!(pa, pb, "{} diverged", spec.name);
                    a.update(r);
                    b.update(r);
                } else {
                    a.notify_nonconditional(r);
                    b.notify_nonconditional(r);
                }
            }
        }
    }

    /// The IMLI state's checkpoint/restore is exact under arbitrary
    /// right-path/wrong-path interleavings.
    #[test]
    fn imli_checkpoint_is_exact_under_arbitrary_speculation(
        right in proptest::collection::vec(arb_record(), 0..200),
        wrong in proptest::collection::vec(arb_record(), 0..200),
    ) {
        let mut state = ImliState::new(&ImliConfig::default());
        for r in &right {
            state.observe(r);
        }
        let cp = state.checkpoint();
        for w in &wrong {
            state.observe_speculative(w);
        }
        state.restore(&cp);
        prop_assert_eq!(state.counter().value(), cp.counter());
        prop_assert_eq!(state.outer_history().pipe(), cp.pipe());
    }

    /// Storage accounting is stable: constructing a predictor twice
    /// reports the same budget, and budgets never depend on the branch
    /// stream.
    #[test]
    fn storage_accounting_is_static(
        records in proptest::collection::vec(arb_record(), 0..100)
    ) {
        for spec in registry() {
            let mut p = spec.make();
            let before = p.storage_bits();
            for r in &records {
                if r.is_conditional() {
                    let _ = p.predict(r.pc);
                    p.update(r);
                } else {
                    p.notify_nonconditional(r);
                }
            }
            prop_assert_eq!(before, p.storage_bits(), "{} budget drifted", spec.name);
        }
    }
}
