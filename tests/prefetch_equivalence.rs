//! Determinism proof for the two-phase / lookahead-prefetch hot path.
//!
//! The simulator's one-record lookahead calls
//! [`ConditionalPredictor::prefetch`] with the *next* PC before the
//! current record is processed, under history that is stale by one
//! branch — and the contract says that hint (issued, skipped, or
//! mis-targeted) can never change a prediction. These tests enforce the
//! contract the strong way: for **every** registry configuration, the
//! prefetching [`simulate_stream`] driver, the fused
//! [`simulate_stream_multi`] driver, and a bare hand-rolled
//! predict/update loop that never calls `prefetch` at all must produce
//! identical prediction statistics.
//!
//! [`ConditionalPredictor::prefetch`]: imli_repro::components::ConditionalPredictor::prefetch
//! [`simulate_stream`]: imli_repro::sim::simulate_stream
//! [`simulate_stream_multi`]: imli_repro::sim::simulate_stream_multi

use imli_repro::components::{ConditionalPredictor, PredictorStats};
use imli_repro::sim::{registry, simulate, simulate_stream_multi};
use imli_repro::workloads::{cbp4_suite, generate, stream_benchmark};

const INSTRUCTIONS: u64 = 60_000;

/// The reference semantics: the CBP protocol with no lookahead and no
/// prefetch hints whatsoever.
fn drive_plain(
    predictor: &mut (dyn ConditionalPredictor + Send),
    trace: &imli_repro::trace::Trace,
) -> PredictorStats {
    let mut stats = PredictorStats::default();
    for record in trace.iter() {
        if record.is_conditional() {
            let pred = predictor.predict(record.pc);
            stats.record(pred == record.taken);
            predictor.update(record);
        } else {
            predictor.notify_nonconditional(record);
        }
    }
    stats
}

#[test]
fn lookahead_prefetch_is_invisible_for_every_registry_config() {
    let spec = &cbp4_suite()[0];
    let trace = generate(spec, INSTRUCTIONS);
    let specs = registry();
    assert!(specs.len() >= 20, "registry unexpectedly small");

    let mut any_prefetching = false;
    for spec_entry in &specs {
        let mut with_hints = spec_entry.make();
        any_prefetching |= with_hints.wants_prefetch();
        // `simulate` drives `simulate_stream`, which takes the lookahead
        // path for predictors that opt in.
        let streamed = simulate(with_hints.as_mut(), &trace);

        let mut bare = spec_entry.make();
        let plain = drive_plain(bare.as_mut(), &trace);

        assert_eq!(
            streamed.stats, plain,
            "{}: lookahead prefetch changed predictions",
            spec_entry.name
        );
    }
    assert!(
        any_prefetching,
        "no registry predictor opts into prefetch; the lookahead path went untested"
    );
}

#[test]
fn fused_multi_lookahead_matches_plain_loop_for_every_registry_config() {
    let spec = &cbp4_suite()[0];
    let trace = generate(spec, INSTRUCTIONS);
    let specs = registry();

    // One fused pass over all registry predictors (block-sliced drive
    // with intra-block lookahead)...
    let mut fleet: Vec<_> = specs.iter().map(|s| s.make()).collect();
    let fused = simulate_stream_multi(&mut fleet, stream_benchmark(spec, INSTRUCTIONS));

    // ...must match the bare per-predictor loop, prediction for
    // prediction.
    for (spec_entry, fused_result) in specs.iter().zip(&fused) {
        let mut bare = spec_entry.make();
        let plain = drive_plain(bare.as_mut(), &trace);
        assert_eq!(
            fused_result.stats, plain,
            "{}: fused lookahead drive diverged from the plain loop",
            spec_entry.name
        );
    }
}
