//! Determinism proof for the two-phase / lookahead-prefetch hot path.
//!
//! The simulator's one-record lookahead calls
//! [`ConditionalPredictor::prefetch`] with the *next* PC before the
//! current record is processed, under history that is stale by one
//! branch — and the pipelined drive mode goes further, issuing hints up
//! to a whole pipeline depth ahead from its plan pass. The contract
//! says those hints (issued, skipped, or mis-targeted) can never change
//! a prediction. These tests enforce the contract the strong way: for
//! **every** registry configuration, the default (pipelined, plan-ahead
//! prefetching) [`simulate`] driver, the explicit scalar
//! (one-record-lookahead) drive, the fused [`simulate_stream_multi`]
//! driver, and a bare hand-rolled predict/update loop that never calls
//! `prefetch` at all must produce identical prediction statistics.
//!
//! [`ConditionalPredictor::prefetch`]: imli_repro::components::ConditionalPredictor::prefetch
//! [`simulate`]: imli_repro::sim::simulate
//! [`simulate_stream_multi`]: imli_repro::sim::simulate_stream_multi

use imli_repro::components::{ConditionalPredictor, PredictorStats};
use imli_repro::sim::{registry, simulate, simulate_mode, simulate_stream_multi, DriveMode};
use imli_repro::workloads::{cbp4_suite, generate, stream_benchmark};

const INSTRUCTIONS: u64 = 60_000;

/// The reference semantics: the CBP protocol with no lookahead and no
/// prefetch hints whatsoever.
fn drive_plain(
    predictor: &mut (dyn ConditionalPredictor + Send),
    trace: &imli_repro::trace::Trace,
) -> PredictorStats {
    let mut stats = PredictorStats::default();
    for record in trace.iter() {
        if record.is_conditional() {
            let pred = predictor.predict(record.pc);
            stats.record(pred == record.taken);
            predictor.update(record);
        } else {
            predictor.notify_nonconditional(record);
        }
    }
    stats
}

#[test]
fn lookahead_prefetch_is_invisible_for_every_registry_config() {
    let spec = &cbp4_suite()[0];
    let trace = generate(spec, INSTRUCTIONS);
    let specs = registry();
    assert!(specs.len() >= 20, "registry unexpectedly small");

    let mut any_prefetching = false;
    for spec_entry in &specs {
        let mut with_hints = spec_entry.make();
        any_prefetching |= with_hints.wants_prefetch();
        // `simulate` drives the default pipelined block drive, which
        // plans indices (and, where the working set warrants it, issues
        // prefetch hints) up to a pipeline depth ahead of the commits.
        let streamed = simulate(with_hints.as_mut(), &trace);

        // The explicit scalar drive keeps the one-record lookahead hint
        // but no plan-ahead front end.
        let mut scalar = spec_entry.make();
        let scalar_result = simulate_mode(scalar.as_mut(), &trace, DriveMode::Scalar);

        let mut bare = spec_entry.make();
        let plain = drive_plain(bare.as_mut(), &trace);

        assert_eq!(
            streamed.stats, plain,
            "{}: plan-ahead prefetch changed predictions",
            spec_entry.name
        );
        assert_eq!(
            scalar_result.stats, plain,
            "{}: scalar lookahead prefetch changed predictions",
            spec_entry.name
        );
    }
    assert!(
        any_prefetching,
        "no registry predictor opts into prefetch; the lookahead path went untested"
    );
}

#[test]
fn fused_multi_lookahead_matches_plain_loop_for_every_registry_config() {
    let spec = &cbp4_suite()[0];
    let trace = generate(spec, INSTRUCTIONS);
    let specs = registry();

    // One fused pass over all registry predictors (block-sliced drive
    // with intra-block lookahead)...
    let mut fleet: Vec<_> = specs.iter().map(|s| s.make()).collect();
    let fused = simulate_stream_multi(&mut fleet, stream_benchmark(spec, INSTRUCTIONS));

    // ...must match the bare per-predictor loop, prediction for
    // prediction.
    for (spec_entry, fused_result) in specs.iter().zip(&fused) {
        let mut bare = spec_entry.make();
        let plain = drive_plain(bare.as_mut(), &trace);
        assert_eq!(
            fused_result.stats, plain,
            "{}: fused lookahead drive diverged from the plain loop",
            spec_entry.name
        );
    }
}
