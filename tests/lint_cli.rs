//! End-to-end tests of the `bp lint` subcommand: exit 0 on the
//! committed tree, nonzero with file:line diagnostics on a seeded
//! mini-workspace with planted violations.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn bp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bp"))
}

#[test]
fn lint_exits_zero_on_committed_tree() {
    let out = bp()
        .arg("lint")
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("bp runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "bp lint failed on the committed tree:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("0 violation(s)"), "{stdout}");
}

#[test]
fn lint_json_is_well_formed_on_committed_tree() {
    let out = bp()
        .args(["lint", "--json"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("bp runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"tool\": \"bp-lint\""), "{stdout}");
    assert!(stdout.contains("\"violations\""), "{stdout}");
}

/// Builds a throwaway workspace with one planted violation per rule
/// family and asserts `bp lint` reports each at its file:line.
#[test]
fn lint_fails_with_file_line_diagnostics_on_seeded_violations() {
    let dir = scratch_dir("bp-lint-cli-seeded");
    fs::write(
        dir.join("Cargo.toml"),
        "[workspace]\nmembers = []\n\n[package]\nname = \"seeded\"\nversion = \"0.0.0\"\n",
    )
    .expect("write manifest");
    let tage = dir.join("crates/tage/src");
    fs::create_dir_all(&tage).expect("mkdir");
    fs::write(
        tage.join("tage.rs"),
        "fn hot() {\n    let v = Vec::new();\n    drop(v);\n}\n",
    )
    .expect("write hot fixture");
    let sim = dir.join("crates/sim/src");
    fs::create_dir_all(&sim).expect("mkdir");
    fs::write(
        sim.join("report.rs"),
        "use std::collections::HashMap;\n\nfn f() {\n    unsafe { g() }\n}\n",
    )
    .expect("write report fixture");

    let out = bp()
        .arg("lint")
        .current_dir(&dir)
        .output()
        .expect("bp runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !out.status.success(),
        "bp lint must fail on seeded violations:\n{stdout}"
    );
    assert!(
        stdout.contains("crates/tage/src/tage.rs:2: hot-path-alloc"),
        "{stdout}"
    );
    assert!(
        stdout.contains("crates/sim/src/report.rs:1: determinism"),
        "{stdout}"
    );
    assert!(
        stdout.contains("crates/sim/src/report.rs:4: unsafe-audit"),
        "{stdout}"
    );

    fs::remove_dir_all(&dir).ok();
}

/// `--fix-audit` writes the inventory, after which plain `lint` stops
/// reporting audit drift on the same tree.
#[test]
fn fix_audit_round_trips() {
    let dir = scratch_dir("bp-lint-cli-audit");
    fs::write(
        dir.join("Cargo.toml"),
        "[workspace]\nmembers = []\n\n[package]\nname = \"seeded\"\nversion = \"0.0.0\"\n",
    )
    .expect("write manifest");
    let src = dir.join("src");
    fs::create_dir_all(&src).expect("mkdir");
    fs::write(
        src.join("lib.rs"),
        "fn f() {\n    // SAFETY: fixture; g is a no-op.\n    unsafe { g() }\n}\n",
    )
    .expect("write fixture");

    // Without an inventory the lint fails on audit drift alone.
    let out = bp()
        .arg("lint")
        .current_dir(&dir)
        .output()
        .expect("bp runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("UNSAFE_AUDIT.md"));

    let out = bp()
        .args(["lint", "--fix-audit"])
        .current_dir(&dir)
        .output()
        .expect("bp runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let audit = fs::read_to_string(dir.join("UNSAFE_AUDIT.md")).expect("inventory written");
    assert!(audit.contains("src/lib.rs:3"), "{audit}");
    assert!(audit.contains("fixture; g is a no-op."), "{audit}");

    let out = bp()
        .arg("lint")
        .current_dir(&dir)
        .output()
        .expect("bp runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );

    fs::remove_dir_all(&dir).ok();
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("{tag}-{}", std::process::id()));
    if Path::new(&dir).exists() {
        fs::remove_dir_all(&dir).expect("clear stale scratch dir");
    }
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}
