//! Regression pins for history flush at **exact capacity boundaries**,
//! driven through the workload combinators.
//!
//! An earlier PR fixed an off-by-one class in the folded-history
//! update at original-length boundaries. Context-switch flushes land
//! at arbitrary stream positions — including exactly when the circular
//! global history has wrapped a whole number of times — so this suite
//! pins two things:
//!
//! * the history substrate itself: a flush at push count `capacity-1`,
//!   `capacity`, and `capacity+1` leaves the bundle equivalent to a
//!   freshly built one for all future behavior (while keeping the
//!   monotonic head);
//! * the combinator level: a predictor driven through
//!   `context_switch` with flush periods straddling capacity
//!   boundaries is bit-identical to hand-driving the same records with
//!   `flush_history()` calls at the same positions.

use imli_repro::history::HistoryState;
use imli_repro::sim::{lookup, simulate_scenario};
use imli_repro::workloads::{
    context_switch, EventStream, FlushMode, Genome, ScenarioEvent, SingleTenant,
};

/// Deterministic PC/taken pattern with no relation to power-of-two
/// boundaries, so any boundary artifact comes from the history, not
/// the stimulus.
fn stimulus(i: u64) -> (bool, u64) {
    let x = i
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left((i % 63) as u32);
    (x & 1 == 0, 0x4000 + (x >> 7) % 4096 * 4)
}

/// Flushing at `capacity - 1`, `capacity`, and `capacity + 1` pushes —
/// the exact wrap boundaries of the circular buffer — must leave the
/// folds, path, and visible history bits equivalent to a fresh bundle:
/// continuing both with the same stimulus keeps every fold identical
/// forever after.
#[test]
fn flush_at_exact_capacity_boundaries_matches_fresh_state() {
    for capacity in [64usize, 256, 1024] {
        for boundary_offset in [-1i64, 0, 1] {
            let flush_at = (capacity as i64 + boundary_offset) as u64;
            let mut flushed = HistoryState::new(capacity, 16);
            let mut fresh = HistoryState::new(capacity, 16);
            // The fold geometry TAGE uses: original lengths up to the
            // longest the capacity admits, folded tight.
            let folds: Vec<_> = [3usize, 8, 12, 31, capacity / 2, capacity - 1]
                .iter()
                .map(|&len| {
                    let a = flushed.add_fold(len, 11);
                    let b = fresh.add_fold(len, 11);
                    assert_eq!(a, b);
                    a
                })
                .collect();
            for i in 0..flush_at {
                let (taken, pc) = stimulus(i);
                flushed.push(taken, pc);
            }
            let pushes = flushed.global().pushes();
            flushed.flush();
            assert_eq!(
                flushed.global().pushes(),
                pushes,
                "capacity {capacity}, flush at {flush_at}: flush must keep the head"
            );
            // From here on the flushed bundle must be indistinguishable
            // from the fresh one, across another full wrap of the
            // buffer.
            for i in 0..(2 * capacity as u64 + 3) {
                let (taken, pc) = stimulus(0x5EED ^ i);
                flushed.push(taken, pc);
                fresh.push(taken, pc);
                for &f in &folds {
                    assert_eq!(
                        flushed.fold(f),
                        fresh.fold(f),
                        "capacity {capacity}, flush at {flush_at}, step {i}: fold diverged"
                    );
                }
                assert_eq!(flushed.path(), fresh.path());
                assert_eq!(
                    flushed.global().low_bits(capacity.min(64)),
                    fresh.global().low_bits(capacity.min(64))
                );
            }
        }
    }
}

/// Combinator-level pin: driving a TAGE-family predictor through
/// `context_switch` is bit-identical to hand-driving the same records
/// with `flush_history()` at the same stream positions — for flush
/// periods chosen to land exactly on, just before, and just after
/// power-of-two record counts (the global-history wrap boundaries of
/// every registry config).
#[test]
fn context_switch_flush_equals_hand_driven_flush_at_boundary_periods() {
    // Adversarial genome stimulus: every record is conditional and
    // retires exactly one instruction, so a flush period of N
    // instructions lands after exactly N records — periods can be
    // aimed precisely at wrap boundaries.
    let genome = Genome::seeded(0xB0DA ^ 0xFFFF, 10);
    for period in [255u64, 256, 257, 1023, 1024, 1025] {
        for name in ["tage-gsc+imli", "tage-sc-l", "gehl+imli"] {
            let spec = lookup(name).expect("registered");

            // Hand-driven reference: replay the event sequence
            // directly, flushing where the combinator says to.
            let mut reference = spec.make();
            let mut ref_stats = imli_repro::components::PredictorStats::default();
            let mut events = context_switch(
                SingleTenant::new(genome.stream(6_000)),
                period,
                FlushMode::Partial,
            );
            let mut ref_flushes = 0u64;
            while let Some(ev) = events.next_event() {
                match ev {
                    ScenarioEvent::Record { record, .. } => {
                        let correct = reference.predict(record.pc) == record.taken;
                        ref_stats.record(correct);
                        reference.update(&record);
                    }
                    ScenarioEvent::Flush(FlushMode::Partial) => {
                        reference.flush_history();
                        ref_flushes += 1;
                    }
                    ScenarioEvent::Flush(FlushMode::Full) => unreachable!("partial scenario"),
                }
            }
            assert!(ref_flushes >= 4, "{name}, period {period}: flushes fired");

            // Candidate: the scenario runner over an identical stream.
            let mut scenario_events = context_switch(
                SingleTenant::new(genome.stream(6_000)),
                period,
                FlushMode::Partial,
            );
            let run = simulate_scenario(&spec, &mut scenario_events);
            assert_eq!(run.flushes, ref_flushes, "{name}, period {period}");
            assert_eq!(
                run.stats, ref_stats,
                "{name}, period {period}: scenario diverged from hand-driven flush replay"
            );
        }
    }
}
