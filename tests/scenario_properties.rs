//! Property layer for the workload combinators and the scenario
//! runner: determinism across runs and worker counts, exact tenant
//! conservation, and flush-period edge cases, under arbitrary
//! schedules and tenant mixes.

use imli_repro::sim::{
    lookup, run_scenario, scenario_by_name, simulate_scenario, PredictorSpec, ScenarioFlush,
    ScenarioSpec, TenantSpec,
};
use imli_repro::trace::BranchStream;
use imli_repro::workloads::{
    context_switch, EventStream, FlushMode, Genome, InterleaveSchedule, ScenarioEvent, SingleTenant,
};
use proptest::prelude::*;

/// The cheap predictors the properties drive — the invariants under
/// test live in the combinator/scenario layer, not in the predictor,
/// so baseline configs keep each case fast.
fn predictors() -> Vec<PredictorSpec> {
    ["bimodal", "gshare"]
        .iter()
        .map(|n| lookup(n).expect("registered"))
        .collect()
}

/// An arbitrary valid interleave schedule (selector-mapped: the
/// vendored proptest shim has ranges/tuples/`prop_map` only).
fn arb_schedule() -> impl Strategy<Value = InterleaveSchedule> {
    (0u8..2, 1u32..200, any::<u64>(), 1u32..64, 0u32..200).prop_map(
        |(kind, quantum, seed, min, extra)| {
            if kind == 0 {
                InterleaveSchedule::RoundRobin { quantum }
            } else {
                InterleaveSchedule::SeededBursts {
                    seed,
                    min,
                    max: min + extra,
                }
            }
        },
    )
}

/// An arbitrary tenant: one of the paper benchmarks, or an adversarial
/// genome.
fn arb_tenant() -> impl Strategy<Value = TenantSpec> {
    (0u8..5, any::<u64>(), 1usize..8).prop_map(|(kind, seed, genes)| match kind {
        0 => TenantSpec::Benchmark("SPEC2K6-04".to_owned()),
        1 => TenantSpec::Benchmark("MM-4".to_owned()),
        2 => TenantSpec::Benchmark("CLIENT02".to_owned()),
        3 => TenantSpec::Benchmark("WS04".to_owned()),
        _ => TenantSpec::Adversarial { seed, genes },
    })
}

/// An arbitrary small multi-tenant scenario over paper benchmarks and
/// adversarial genomes.
fn arb_scenario() -> impl Strategy<Value = ScenarioSpec> {
    (
        proptest::collection::vec(arb_tenant(), 1..4),
        arb_schedule(),
        (0u8..2, 1u64..30_000),
        2_000u64..12_000,
    )
        .prop_map(
            |(tenants, schedule, (has_flush, period), instructions)| ScenarioSpec {
                name: "prop".to_owned(),
                tenants,
                schedule,
                flush: (has_flush == 1).then_some(ScenarioFlush {
                    period,
                    mode: FlushMode::Partial,
                }),
                instructions,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The interleaved event sequence is a pure function of the spec:
    /// two independent event streams built from the same spec agree
    /// event for event.
    #[test]
    fn interleave_replays_identically(scenario in arb_scenario()) {
        prop_assert!(scenario.validate().is_ok());
        let mut a = scenario.events();
        let mut b = scenario.events();
        loop {
            let (ea, eb) = (a.next_event(), b.next_event());
            prop_assert_eq!(ea, eb, "event streams diverged");
            if ea.is_none() {
                break;
            }
        }
    }

    /// `run_scenario` produces the identical report — bytes included —
    /// across repeated runs and across `--jobs 1` vs `--jobs 8`
    /// (solo-per-predictor vs fused scheduling).
    #[test]
    fn scenario_report_is_jobs_and_rerun_invariant(scenario in arb_scenario()) {
        let predictors = predictors();
        let solo = run_scenario(&scenario, &predictors, 8, &|_| {}).expect("valid");
        let rerun = run_scenario(&scenario, &predictors, 8, &|_| {}).expect("valid");
        let fused = run_scenario(&scenario, &predictors, 1, &|_| {}).expect("valid");
        prop_assert_eq!(&solo, &rerun, "rerun diverged");
        prop_assert_eq!(&solo, &fused, "worker count changed the result");
        prop_assert_eq!(solo.to_json(), fused.to_json());
        prop_assert_eq!(solo.to_markdown(), fused.to_markdown());
    }

    /// Tenant conservation: the per-tenant tallies partition the
    /// combined run exactly — instructions, predictions, and
    /// mispredictions each sum to the totals, with nothing lost or
    /// double-counted, and every prediction attributed.
    #[test]
    fn tenant_tallies_partition_the_combined_run(scenario in arb_scenario()) {
        for spec in predictors() {
            let mut events = scenario.events();
            let run = simulate_scenario(&spec, events.as_mut());
            prop_assert_eq!(run.tenants.len(), scenario.tenants.len());
            let (mut instr, mut predicted, mut mispredicted, mut provided) = (0u64, 0u64, 0u64, 0u64);
            for tally in &run.tenants {
                instr += tally.instructions;
                predicted += tally.stats.predicted;
                mispredicted += tally.stats.mispredicted;
                provided += tally.attribution.total_provided();
            }
            prop_assert_eq!(instr, run.instructions, "{}: instructions leaked", &spec.name);
            prop_assert_eq!(predicted, run.stats.predicted, "{}: predictions leaked", &spec.name);
            prop_assert_eq!(
                mispredicted, run.stats.mispredicted,
                "{}: mispredictions leaked", &spec.name
            );
            prop_assert_eq!(provided, run.stats.predicted, "{}: unattributed predictions", &spec.name);
        }
    }

    /// A flush period longer than the whole combined stream is
    /// indistinguishable from no flush policy at all: zero flush events
    /// and the identical run.
    #[test]
    fn period_beyond_stream_length_never_flushes(
        seed in any::<u64>(),
        genes in 1usize..8,
        instructions in 1_000u64..8_000,
        slack in 1u64..1_000_000,
    ) {
        // Total stream length is bounded by the instruction budget, so
        // any period >= budget + slack can never be reached.
        let period = instructions + slack;
        let mut flushed = context_switch(
            SingleTenant::new(Genome::seeded(seed, genes).stream(instructions)),
            period,
            FlushMode::Partial,
        );
        let mut plain = Genome::seeded(seed, genes).stream(instructions);
        loop {
            match flushed.next_event() {
                Some(ScenarioEvent::Flush(_)) => prop_assert!(false, "flush fired before the period"),
                Some(ScenarioEvent::Record { record, tenant }) => {
                    prop_assert_eq!(tenant, 0u32);
                    prop_assert_eq!(Some(record), plain.next_record());
                }
                None => break,
            }
        }
        prop_assert!(plain.next_record().is_none(), "records were dropped");

        // And at the scenario level: the no-flush spec and the
        // over-long-period spec produce equal runs.
        let base = ScenarioSpec {
            name: "prop".to_owned(),
            tenants: vec![TenantSpec::Adversarial { seed, genes }],
            schedule: InterleaveSchedule::RoundRobin { quantum: 16 },
            flush: None,
            instructions,
        };
        let mut long = base.clone();
        long.flush = Some(ScenarioFlush { period, mode: FlushMode::Partial });
        let spec = lookup("gshare").expect("registered");
        let mut base_events = base.events();
        let mut long_events = long.events();
        let a = simulate_scenario(&spec, base_events.as_mut());
        let b = simulate_scenario(&spec, long_events.as_mut());
        prop_assert_eq!(a, b, "an unreachable flush period changed the run");
    }
}

/// Built-in scenarios stay deterministic end to end (non-proptest
/// smoke so a bare `cargo test scenario_properties` exercises it too).
#[test]
fn builtin_hostile_mix_is_rerun_invariant() {
    let mut scenario = scenario_by_name("hostile_mix").expect("builtin");
    scenario.instructions = 10_000;
    let predictors = predictors();
    let a = run_scenario(&scenario, &predictors, 4, &|_| {}).expect("valid");
    let b = run_scenario(&scenario, &predictors, 4, &|_| {}).expect("valid");
    assert_eq!(a, b);
    assert_eq!(a.to_json(), b.to_json());
}
