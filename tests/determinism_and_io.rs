//! Cross-crate determinism and serialization round trips.

use imli_repro::sim::{make_predictor, registry, simulate};
use imli_repro::trace::{read_trace, write_trace};
use imli_repro::workloads::{cbp3_suite, cbp4_suite, find_benchmark, generate};

/// Every predictor must produce bit-identical results when run twice on
/// the same trace — there is no hidden nondeterminism anywhere in the
/// stack (the TAGE allocation "randomness" is a seeded xorshift).
#[test]
fn simulation_is_deterministic_for_every_registered_predictor() {
    let spec = find_benchmark("MM07").expect("exists");
    let trace = generate(&spec, 120_000);
    for spec in registry() {
        let mut a = spec.make();
        let mut b = spec.make();
        let ra = simulate(a.as_mut(), &trace);
        let rb = simulate(b.as_mut(), &trace);
        assert_eq!(ra.stats, rb.stats, "{} diverged between runs", spec.name);
    }
}

/// Suite generation is stable: regenerating a benchmark yields the
/// identical trace (this is what makes every experiment reproducible
/// from the spec alone).
#[test]
fn suite_generation_is_reproducible() {
    for name in ["SPEC2K6-12", "WS04", "CLIENT-3"] {
        let spec = find_benchmark(name).expect("exists");
        assert_eq!(generate(&spec, 60_000), generate(&spec, 60_000), "{name}");
    }
}

/// A generated benchmark survives the binary trace format unchanged, and
/// the deserialized trace simulates identically.
#[test]
fn trace_io_round_trip_preserves_simulation() {
    let spec = find_benchmark("INT03").expect("exists");
    let trace = generate(&spec, 80_000);
    let mut buf = Vec::new();
    write_trace(&mut buf, &trace).expect("serialize");
    let back = read_trace(buf.as_slice()).expect("deserialize");
    assert_eq!(back, trace);

    let mut p1 = make_predictor("tage-gsc+imli").expect("registered");
    let mut p2 = make_predictor("tage-gsc+imli").expect("registered");
    let r1 = simulate(p1.as_mut(), &trace);
    let r2 = simulate(p2.as_mut(), &back);
    assert_eq!(r1.stats, r2.stats);
}

/// Both suites generate traces with realistic aggregate shape: branch
/// density in the 1/4..1/12 instruction range and non-degenerate taken
/// rates (calibration guard for the whole evaluation).
#[test]
fn suites_have_realistic_branch_statistics() {
    for spec in cbp4_suite().iter().chain(cbp3_suite().iter()) {
        let trace = generate(spec, 40_000);
        let stats = trace.stats();
        let density = stats.branch_density().expect("has branches");
        assert!(
            (1.0 / 14.0..=1.0 / 3.0).contains(&density),
            "{}: branch density {density:.4} unrealistic",
            spec.name
        );
        let taken = stats.taken_rate().expect("has conditionals");
        assert!(
            (0.1..=0.9).contains(&taken),
            "{}: taken rate {taken:.3} degenerate",
            spec.name
        );
        assert!(
            stats.static_conditionals >= 5,
            "{}: too few static branches",
            spec.name
        );
    }
}
