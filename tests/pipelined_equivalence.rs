//! Bit-equivalence proof for the history-ahead pipelined drive mode.
//!
//! The pipelined block drive ([`DriveMode::Pipelined`], the default)
//! runs an index-generation front end `pipeline_depth` branches ahead
//! of the commit loop: it advances the architectural index inputs
//! itself, capturing each branch's addresses and pure context into plan
//! scratch as it goes. Its whole justification is the purity invariant:
//! in trace-driven simulation every index input evolves as a pure
//! function of `(pc, outcome)` from the trace — never of a prediction —
//! so the plan captured at branch *i* equals what the scalar lookup
//! would compute there, and the two drive modes must agree **bit for
//! bit** — same statistics, same MPKI, same attribution stream, same
//! post-run predictor state — for every registry configuration, at
//! every block boundary, and across context-switch flushes.
//!
//! [`DriveMode::Pipelined`]: imli_repro::sim::DriveMode

use imli_repro::components::{ConditionalPredictor, PredictorStats};
use imli_repro::sim::{
    drive_block_mode, make_predictor, registry, scenario_by_name, simulate_mode, DriveMode,
};
use imli_repro::trace::BranchRecord;
use imli_repro::workloads::{cbp4_suite, generate, ScenarioEvent};

const INSTRUCTIONS: u64 = 60_000;

/// Hosts with a hand-written pipelined front end (everything else
/// inherits the default `run_block`, where the two modes are trivially
/// the same loop).
const PIPELINED_HOSTS: [&str; 6] = [
    "tage-sc-l+imli",
    "tage-sc-l",
    "tage-gsc+imli",
    "ftl+imli",
    "gehl+imli",
    "perceptron+imli",
];

fn drive_in_blocks(
    predictor: &mut (dyn ConditionalPredictor + Send),
    records: &[BranchRecord],
    block_len: usize,
    mode: DriveMode,
) -> PredictorStats {
    let mut stats = PredictorStats::default();
    for block in records.chunks(block_len) {
        drive_block_mode(predictor, block, &mut stats, mode);
    }
    stats
}

#[test]
fn pipelined_matches_scalar_for_every_registry_config() {
    let suite = cbp4_suite();
    let trace = generate(&suite[0], INSTRUCTIONS);
    let probe = generate(&suite[1], INSTRUCTIONS / 2);
    let specs = registry();
    assert!(specs.len() >= 20, "registry unexpectedly small");

    for spec in &specs {
        let mut pipelined = spec.make();
        let mut scalar = spec.make();
        let p = simulate_mode(pipelined.as_mut(), &trace, DriveMode::Pipelined);
        let s = simulate_mode(scalar.as_mut(), &trace, DriveMode::Scalar);
        assert_eq!(p, s, "{}: drive modes diverged", spec.name);
        assert_eq!(p.mpki(), s.mpki(), "{}: MPKI diverged", spec.name);

        // Post-run state equivalence: if any table, counter, history,
        // or threshold ended up different, a scalar continuation run
        // from each end state would diverge.
        let p2 = simulate_mode(pipelined.as_mut(), &probe, DriveMode::Scalar);
        let s2 = simulate_mode(scalar.as_mut(), &probe, DriveMode::Scalar);
        assert_eq!(
            p2, s2,
            "{}: post-run predictor state diverged between drive modes",
            spec.name
        );
    }
}

#[test]
fn block_boundaries_are_invisible() {
    let trace = generate(&cbp4_suite()[0], INSTRUCTIONS);
    let records = trace.records();
    for name in PIPELINED_HOSTS {
        let mut scalar = make_predictor(name).expect("registered");
        let mut scalar_stats = PredictorStats::default();
        drive_block_mode(
            scalar.as_mut(),
            records,
            &mut scalar_stats,
            DriveMode::Scalar,
        );
        // 4095/4096/4097 straddle the simulator's block size; 1 forces
        // a plan/commit round trip on every record; 61 keeps chunks and
        // blocks misaligned throughout.
        for block_len in [1usize, 61, 4095, 4096, 4097] {
            let mut pipelined = make_predictor(name).expect("registered");
            let stats =
                drive_in_blocks(pipelined.as_mut(), records, block_len, DriveMode::Pipelined);
            assert_eq!(
                stats, scalar_stats,
                "{name}: pipelined drive diverged at block length {block_len}"
            );
        }
    }
}

#[test]
fn every_pipeline_depth_is_bit_identical() {
    let trace = generate(&cbp4_suite()[2], INSTRUCTIONS);
    let records = trace.records();
    for name in ["tage-sc-l+imli", "ftl+imli", "perceptron+imli"] {
        let mut scalar = make_predictor(name).expect("registered");
        let mut scalar_stats = PredictorStats::default();
        drive_block_mode(
            scalar.as_mut(),
            records,
            &mut scalar_stats,
            DriveMode::Scalar,
        );
        // 0 and 1000 exercise the clamp at both ends.
        for depth in [0usize, 1, 3, 16, 64, 1000] {
            let mut pipelined = make_predictor(name).expect("registered");
            pipelined.set_pipeline_depth(depth);
            let stats = drive_in_blocks(pipelined.as_mut(), records, 4096, DriveMode::Pipelined);
            assert_eq!(
                stats, scalar_stats,
                "{name}: pipelined drive diverged at depth {depth}"
            );
        }
    }
}

#[test]
fn flushes_between_blocks_match_scalar() {
    // Replay a multi-tenant scenario with partial context-switch
    // flushes through both drive modes: records accumulate into blocks,
    // each flush drains the pending block and then flushes history —
    // exactly the interplay where a plan captured before the flush
    // would poison the next block if the block boundaries leaked.
    let scenario = scenario_by_name("paper_switch").expect("builtin");
    let mut events = scenario.events();
    let mut all: Vec<ScenarioEvent> = Vec::new();
    while let Some(ev) = events.next_event() {
        all.push(ev);
    }
    let flushes = all
        .iter()
        .filter(|ev| matches!(ev, ScenarioEvent::Flush(_)))
        .count();
    assert!(flushes > 0, "scenario must cross flush boundaries");

    for name in PIPELINED_HOSTS {
        let mut results = Vec::new();
        for mode in [DriveMode::Pipelined, DriveMode::Scalar] {
            let mut predictor = make_predictor(name).expect("registered");
            let mut stats = PredictorStats::default();
            let mut block: Vec<BranchRecord> = Vec::new();
            for ev in &all {
                match ev {
                    ScenarioEvent::Record { record, .. } => {
                        block.push(*record);
                        if block.len() == 4096 {
                            drive_block_mode(predictor.as_mut(), &block, &mut stats, mode);
                            block.clear();
                        }
                    }
                    ScenarioEvent::Flush(_) => {
                        drive_block_mode(predictor.as_mut(), &block, &mut stats, mode);
                        block.clear();
                        predictor.flush_history();
                    }
                }
            }
            drive_block_mode(predictor.as_mut(), &block, &mut stats, mode);
            results.push(stats);
        }
        assert_eq!(
            results[0], results[1],
            "{name}: flush interplay diverged between drive modes"
        );
    }
}

#[test]
fn attributed_predictions_agree_after_pipelined_warmup() {
    // The attributed (reporting) path stays scalar, but it runs over
    // predictor state that the pipelined drive produced. Warm one
    // predictor per mode, then compare the full attributed prediction
    // stream branch by branch.
    let warm = generate(&cbp4_suite()[0], INSTRUCTIONS);
    let probe = generate(&cbp4_suite()[1], 10_000);
    for name in PIPELINED_HOSTS {
        let mut pipelined = make_predictor(name).expect("registered");
        let mut scalar = make_predictor(name).expect("registered");
        let mut sink = PredictorStats::default();
        drive_block_mode(
            pipelined.as_mut(),
            warm.records(),
            &mut sink,
            DriveMode::Pipelined,
        );
        drive_block_mode(
            scalar.as_mut(),
            warm.records(),
            &mut sink,
            DriveMode::Scalar,
        );
        for record in probe.iter() {
            if record.is_conditional() {
                let p = pipelined.predict_attributed(record.pc);
                let s = scalar.predict_attributed(record.pc);
                assert_eq!(
                    p, s,
                    "{name}: attribution diverged after pipelined warmup at pc {:#x}",
                    record.pc
                );
                pipelined.update(record);
                scalar.update(record);
            } else {
                pipelined.notify_nonconditional(record);
                scalar.notify_nonconditional(record);
            }
        }
    }
}
