//! Workspace-level guarantees of the streaming data path and the
//! parallel grid engine:
//!
//! * streamed generation + simulation is *bit-identical* to the
//!   materialized path, for hosts of every family;
//! * `Engine::run_grid` returns the identical grid regardless of
//!   worker count.

use imli_repro::sim::{lookup, make_predictor, simulate, simulate_stream, Engine, PredictorSpec};
use imli_repro::workloads::{
    cbp4_suite, generate, stream_benchmark, BenchmarkSpec, KernelSpec, TripCount,
};
use proptest::prelude::*;

/// The three hosts the streaming-equivalence property covers: a
/// baseline, a TAGE-family IMLI host, and a GEHL-family IMLI host.
const EQUIVALENCE_CONFIGS: [&str; 3] = ["gshare", "tage-gsc+imli", "gehl+sic"];

/// A benchmark spec whose kernel mix exercises the nest, bias, and
/// irregular generators, parameterized by seed.
fn spec_for_seed(seed: u64) -> BenchmarkSpec {
    BenchmarkSpec::new(
        format!("prop-{seed:x}"),
        seed,
        vec![
            (
                KernelSpec::Biased {
                    probabilities: vec![0.95, 0.6, 0.1],
                },
                1.5,
            ),
            (
                KernelSpec::SameIteration {
                    trip: TripCount::Variable { min: 4, max: 28 },
                    drift: 0.2,
                    noise_branches: 1,
                },
                1.0,
            ),
            (
                KernelSpec::Irregular {
                    branches: 4,
                    spread: 0.15,
                },
                0.3,
            ),
        ],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any seed and budget, simulating the streamed benchmark
    /// yields bit-identical `PredictorStats` (and instruction counts)
    /// to simulating the materialized `Trace` of the same spec.
    #[test]
    fn streamed_simulation_equals_materialized_simulation(
        seed in any::<u64>(),
        instructions in 20_000u64..60_000,
    ) {
        let spec = spec_for_seed(seed);
        let trace = generate(&spec, instructions);
        for config in EQUIVALENCE_CONFIGS {
            let mut materialized = make_predictor(config).expect("registered");
            let mut streamed = make_predictor(config).expect("registered");
            let via_trace = simulate(materialized.as_mut(), &trace);
            let via_stream =
                simulate_stream(streamed.as_mut(), stream_benchmark(&spec, instructions));
            prop_assert_eq!(
                &via_trace.stats, &via_stream.stats,
                "{} stats diverged between paths", config
            );
            prop_assert_eq!(via_trace.instructions, via_stream.instructions);
            prop_assert_eq!(&via_trace.benchmark, &via_stream.benchmark);
        }
    }
}

/// Streaming equivalence also holds on the real suite benchmarks the
/// paper's analysis singles out (fixed seeds, planted correlations).
#[test]
fn streamed_simulation_equals_materialized_on_suite_benchmarks() {
    let suite = cbp4_suite();
    for bench in ["SPEC2K6-04", "SPEC2K6-12", "MM-4"] {
        let spec = suite.iter().find(|s| s.name == bench).expect("in suite");
        let trace = generate(spec, 80_000);
        for config in EQUIVALENCE_CONFIGS {
            let mut a = make_predictor(config).expect("registered");
            let mut b = make_predictor(config).expect("registered");
            let materialized = simulate(a.as_mut(), &trace);
            let streamed = simulate_stream(b.as_mut(), spec.stream(80_000));
            assert_eq!(materialized, streamed, "{config} on {bench}");
        }
    }
}

/// `Engine::run_grid` with 1 worker and with 8 workers produces
/// identical result grids: same MPKI in every cell, same
/// predictor-major ordering.
#[test]
fn engine_grid_is_deterministic_across_job_counts() {
    let predictors: Vec<PredictorSpec> = EQUIVALENCE_CONFIGS
        .iter()
        .map(|c| lookup(c).expect("registered"))
        .collect();
    let benchmarks: Vec<BenchmarkSpec> = cbp4_suite().into_iter().take(6).collect();

    let sequential = Engine::with_jobs(1).run_grid(&predictors, &benchmarks, 50_000);
    let parallel = Engine::with_jobs(8).run_grid(&predictors, &benchmarks, 50_000);

    assert_eq!(sequential.predictors, parallel.predictors);
    assert_eq!(sequential.benchmarks, parallel.benchmarks);
    for p in 0..predictors.len() {
        for (b, bench) in benchmarks.iter().enumerate() {
            let (s, q) = (sequential.cell(p, b), parallel.cell(p, b));
            assert_eq!(s, q, "cell ({p}, {b}) diverged");
            assert_eq!(s.benchmark, bench.name, "ordering broke");
        }
    }
    assert_eq!(sequential, parallel);
}

/// The engine's grid agrees with the one-at-a-time sequential API: each
/// row equals a fresh `run_suite` of that configuration.
#[test]
fn engine_grid_matches_sequential_suite_runs() {
    let predictors: Vec<PredictorSpec> = ["gshare", "tage-gsc+imli"]
        .iter()
        .map(|c| lookup(c).expect("registered"))
        .collect();
    let benchmarks: Vec<BenchmarkSpec> = cbp4_suite().into_iter().take(4).collect();
    let grid = Engine::new().run_grid(&predictors, &benchmarks, 40_000);
    for spec in &predictors {
        let suite = imli_repro::sim::run_suite(&|| spec.make(), &benchmarks, 40_000);
        let row = grid.suite_result(&spec.name).expect("row exists");
        assert_eq!(suite.rows, row.rows, "{}", spec.name);
    }
}
