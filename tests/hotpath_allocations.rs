//! Allocation-regression guard for the simulator hot path.
//!
//! The steady-state predict/update loop runs once per conditional
//! branch — millions of times per MPKI point — and must never touch
//! the heap: per-branch `Vec`s and lookup clones are exactly the
//! regressions this PR removed (`TageLookup` used to allocate two
//! `Vec`s *and* clone itself on every branch). A counting global
//! allocator wraps the system allocator; after warmup, a measured
//! window of predict/update/notify calls must perform **zero**
//! allocations for every predictor the acceptance criteria name.

use imli_repro::sim::{drive_block, drive_block_mode, make_predictor, scenario_by_name, DriveMode};
use imli_repro::workloads::{cbp4_suite, ScenarioEvent};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation entering the system allocator.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: a pure pass-through wrapper around the `System` allocator
// plus a relaxed atomic increment; every GlobalAlloc contract
// obligation (layout validity, pointer provenance) is delegated
// unchanged to `System`, which upholds it.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: caller obligations forwarded verbatim to `System.alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `layout` is the caller's, passed through unchanged.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller obligations forwarded verbatim to `System`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `layout` is the caller's, passed through unchanged.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: caller obligations forwarded verbatim to `System`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr`/`layout`/`new_size` are the caller's, passed
        // through unchanged; `ptr` was produced by this same allocator,
        // which is `System` underneath.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: caller obligations forwarded verbatim to `System`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` came from this allocator (`System` underneath)
        // with the same `layout`, per the caller's contract.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// One test drives all predictors sequentially: the counter is global,
/// so concurrent tests in this binary would alias each other's counts.
#[test]
fn steady_state_predict_update_is_allocation_free() {
    // Materialize the record stream *before* any measurement so the
    // driving loop itself cannot allocate.
    let spec = &cbp4_suite()[0];
    let records: Vec<_> = spec.stream(400_000).collect();
    let (warmup, measured) = records.split_at(records.len() / 2);
    assert!(measured.len() > 20_000, "need a real measurement window");

    // The three the acceptance criteria name, plus the other hosts
    // whose per-branch paths this PR de-allocated (IMLI variants reach
    // a steady outer-history queue depth during warmup).
    for name in [
        "tage-sc-l",
        "gshare",
        "perceptron",
        "gehl",
        "tage-sc-l+imli",
        "bimodal",
    ] {
        let mut predictor = make_predictor(name).expect("registered");
        let mut drive = |window: &[imli_repro::trace::BranchRecord]| -> u64 {
            let mut predicted = 0u64;
            for record in window {
                if record.is_conditional() {
                    let _ = predictor.predict(record.pc);
                    predictor.update(record);
                    predicted += 1;
                } else {
                    predictor.notify_nonconditional(record);
                }
            }
            predicted
        };
        drive(warmup);

        let before = ALLOCATIONS.load(Ordering::Relaxed);
        let predicted = drive(measured);
        let after = ALLOCATIONS.load(Ordering::Relaxed);

        assert!(predicted > 10_000, "{name}: window exercised the hot path");
        assert_eq!(
            after - before,
            0,
            "{name}: steady-state predict/update allocated {} times over {} branches",
            after - before,
            predicted
        );
    }

    // The same guarantee for the drive loop the simulator actually
    // runs: `drive_block` adds the one-record lookahead and the
    // `prefetch` hint for predictors that opt in (TAGE-SC-L's two-phase
    // index/probe lookup behind a prefetched base row), and none of
    // that may allocate either. Driven here for a prefetching and a
    // non-prefetching predictor so both branches of the loop are
    // measured.
    for name in ["tage-sc-l", "gehl"] {
        let mut predictor = make_predictor(name).expect("registered");
        let mut stats = imli_repro::components::PredictorStats::default();
        drive_block(predictor.as_mut(), warmup, &mut stats);

        let before = ALLOCATIONS.load(Ordering::Relaxed);
        drive_block(predictor.as_mut(), measured, &mut stats);
        let after = ALLOCATIONS.load(Ordering::Relaxed);

        assert!(stats.predicted > 20_000, "{name}: drive_block ran");
        assert_eq!(
            after - before,
            0,
            "{name}: steady-state drive_block allocated {} times",
            after - before,
        );
    }

    // Both explicit drive modes, driven in simulator-sized blocks so
    // the pipelined path's plan/commit chunk loop (context snapshots,
    // plan fills, planned gathers, trained commits) is inside the
    // measured window. The plan buffers are allocated at predictor
    // construction; steady state must stay allocation-free in both
    // modes for every pipelined host family.
    for name in ["tage-sc-l+imli", "ftl+imli", "perceptron+imli"] {
        for mode in [DriveMode::Pipelined, DriveMode::Scalar] {
            let mut predictor = make_predictor(name).expect("registered");
            let mut stats = imli_repro::components::PredictorStats::default();
            for block in warmup.chunks(4096) {
                drive_block_mode(predictor.as_mut(), block, &mut stats, mode);
            }

            let before = ALLOCATIONS.load(Ordering::Relaxed);
            for block in measured.chunks(4096) {
                drive_block_mode(predictor.as_mut(), block, &mut stats, mode);
            }
            let after = ALLOCATIONS.load(Ordering::Relaxed);

            assert!(stats.predicted > 20_000, "{name}: {mode:?} drive ran");
            assert_eq!(
                after - before,
                0,
                "{name}: steady-state {mode:?} block drive allocated {} times",
                after - before,
            );
        }
    }

    // The scenario drive loop: multi-tenant records plus partial
    // context-switch flushes, exactly what `bp scenario` replays per
    // event. The events are materialized up front (event *generation*
    // may allocate; consuming them must not), and partial flushes go
    // through `flush_history()`, which is required to reuse the
    // predictor's existing buffers. Full flushes rebuild the predictor
    // and are allocating by design, so they are excluded here.
    {
        let scenario = scenario_by_name("paper_switch").expect("builtin");
        let mut events = scenario.events();
        let mut all: Vec<ScenarioEvent> = Vec::new();
        while let Some(ev) = events.next_event() {
            all.push(ev);
        }
        let (warmup_events, measured_events) = all.split_at(all.len() / 2);
        for name in ["tage-sc-l", "tage-gsc+imli", "gehl+imli"] {
            let mut predictor = make_predictor(name).expect("registered");
            let mut drive = |window: &[ScenarioEvent]| -> (u64, u64) {
                let (mut predicted, mut flushes) = (0u64, 0u64);
                for ev in window {
                    match ev {
                        ScenarioEvent::Record { record, .. } => {
                            if record.is_conditional() {
                                let _ = predictor.predict_attributed(record.pc);
                                predictor.update(record);
                                predicted += 1;
                            } else {
                                predictor.notify_nonconditional(record);
                            }
                        }
                        ScenarioEvent::Flush(_) => {
                            predictor.flush_history();
                            flushes += 1;
                        }
                    }
                }
                (predicted, flushes)
            };
            drive(warmup_events);

            let before = ALLOCATIONS.load(Ordering::Relaxed);
            let (predicted, flushes) = drive(measured_events);
            let after = ALLOCATIONS.load(Ordering::Relaxed);

            assert!(
                predicted > 20_000,
                "{name}: scenario window drove the hot path"
            );
            assert!(flushes > 0, "{name}: the window crossed flush boundaries");
            assert_eq!(
                after - before,
                0,
                "{name}: steady-state scenario drive (incl. {flushes} partial flushes) \
                 allocated {} times over {predicted} branches",
                after - before,
            );
        }
    }
}
