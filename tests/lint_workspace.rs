//! Self-test: the committed tree is lint-clean and the committed
//! `UNSAFE_AUDIT.md` matches what the scanner regenerates, so `bp lint`
//! in CI can never fail on a tree where this test passed.

use imli_repro::lint::lint_workspace;
use std::path::Path;

#[test]
fn committed_workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = lint_workspace(root).expect("workspace scan succeeds");
    assert!(
        report.diagnostics.is_empty(),
        "committed tree has lint violations:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files_scanned > 50, "scan looks truncated");
    assert!(
        !report.unsafe_sites.is_empty(),
        "the workspace has audited unsafe sites; finding none means the scanner broke"
    );
}

#[test]
fn committed_unsafe_audit_is_current() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = lint_workspace(root).expect("workspace scan succeeds");
    let committed = std::fs::read_to_string(root.join("UNSAFE_AUDIT.md"))
        .expect("UNSAFE_AUDIT.md is committed");
    assert_eq!(
        committed,
        report.render_audit(),
        "UNSAFE_AUDIT.md is stale; run `bp lint --fix-audit` and commit the result"
    );
}

#[test]
fn every_unsafe_site_is_justified() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = lint_workspace(root).expect("workspace scan succeeds");
    for site in &report.unsafe_sites {
        assert!(
            site.justification.is_some(),
            "{}:{} carries no SAFETY justification",
            site.path,
            site.line
        );
    }
}
