//! Property tests for the config layer and the budget-sweep solver.
//!
//! The config layer's contract is *exactness*: for every registry entry
//! and for every solver-produced configuration,
//! `storage_bits_estimate()` must equal the built predictor's itemized
//! `storage_items()` sum bit-for-bit; solver output must land within
//! the budget tolerance and be monotone in the budget; and the
//! hand-rolled text round-trip must reproduce both the bytes and the
//! built behaviour.

use imli_repro::components::{PredictorConfig, StorageBudget};
use imli_repro::sim::{
    registry, solve_budget, RegistryConfig, BUDGET_TOLERANCE, STANDARD_BUDGETS_KBIT, SWEEP_FAMILIES,
};
use proptest::prelude::*;

#[test]
fn every_registry_estimate_equals_built_storage_items_sum() {
    for spec in registry() {
        let built = spec.make();
        let items_sum: u64 = built.storage_items().iter().map(|i| i.bits).sum();
        assert_eq!(
            spec.config.storage_bits_estimate(),
            items_sum,
            "{}: config estimate diverges from built storage_items() sum",
            spec.name
        );
        // And the itemized total is what storage_bits() reports.
        assert_eq!(items_sum, built.storage_bits(), "{}", spec.name);
    }
}

#[test]
fn every_registry_config_round_trips_exactly() {
    for spec in registry() {
        let text = spec.config.to_text();
        let parsed =
            RegistryConfig::from_text(&text).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        assert_eq!(
            parsed.to_text(),
            text,
            "{}: serialization not stable",
            spec.name
        );
        assert_eq!(
            parsed.storage_bits_estimate(),
            spec.config.storage_bits_estimate(),
            "{}",
            spec.name
        );
        let a = parsed.build();
        let b = spec.make();
        assert_eq!(a.name(), b.name(), "{}", spec.name);
        assert_eq!(a.storage_items(), b.storage_items(), "{}", spec.name);
    }
}

/// A configuration that passes `validate()` must build without
/// panicking or misbehaving — fields that would trip a constructor
/// assert (`AdaptiveThreshold::new`), overflow a stored counter
/// (`conf_max`), or render a component inert (`confidence_threshold`)
/// must be rejected up front.
#[test]
fn out_of_range_config_fields_fail_validation_instead_of_building() {
    for spec in registry() {
        let text = spec.config.to_text();
        for (field, bad) in [
            ("threshold_init", 1 << 20),
            ("threshold_max", -1i64),
            ("conf_max", 255),
            ("confidence_threshold", 200),
            // Size-determining fields: a validated config must never
            // attempt a terabit-scale allocation at build time.
            ("bias_entries", 1 << 40),
            ("table_entries", 1 << 40),
            ("max_history", 1 << 50),
            ("sic_entries", 1 << 40),
            ("entries", 1 << 40),
        ] {
            let needle = format!("\"{field}\": ");
            let Some(at) = text.find(&needle) else {
                continue; // family has no adaptive threshold (baselines)
            };
            let end = text[at + needle.len()..]
                .find([',', '\n'])
                .map(|i| at + needle.len() + i)
                .expect("field has a terminator");
            let mutated = format!("{}{bad}{}", &text[..at + needle.len()], &text[end..]);
            let parsed = RegistryConfig::from_text(&mutated)
                .unwrap_or_else(|e| panic!("{} ({field}): {e}", spec.name));
            assert!(
                parsed.validate().is_err(),
                "{}: {field}={bad} passed validation",
                spec.name
            );
        }
    }
}

#[test]
fn solver_estimates_equal_built_storage_for_every_family_and_budget() {
    for family in SWEEP_FAMILIES {
        for kbit in STANDARD_BUDGETS_KBIT {
            let config = solve_budget(family, kbit * 1024)
                .unwrap_or_else(|e| panic!("{family}@{kbit}: {e}"));
            let estimate = config.storage_bits_estimate();
            let built: u64 = config.build().storage_items().iter().map(|i| i.bits).sum();
            assert_eq!(estimate, built, "{family}@{kbit}");
            let target = (kbit * 1024) as f64;
            let error = (estimate as f64 - target).abs() / target;
            assert!(
                error <= BUDGET_TOLERANCE,
                "{family}@{kbit}: {:.2}% off budget",
                error * 100.0
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For ANY pair of budgets in the supported range (not just the
    /// standard ladder), a larger budget never yields less storage —
    /// the candidate lattices are target-independent, so the
    /// nearest-point selection is monotone.
    #[test]
    fn solver_is_monotone_for_arbitrary_budget_pairs(
        family_idx in 0usize..SWEEP_FAMILIES.len(),
        a in 8u64..=256,
        b in 8u64..=256,
    ) {
        let family = SWEEP_FAMILIES[family_idx];
        let (lo, hi) = (a.min(b), a.max(b));
        // Arbitrary Kbit targets may be unreachable for the
        // power-of-two-only baseline families; monotonicity is only
        // claimed where the solver succeeds.
        let (Ok(lo_cfg), Ok(hi_cfg)) = (
            solve_budget(family, lo * 1024),
            solve_budget(family, hi * 1024),
        ) else {
            return Ok(());
        };
        prop_assert!(
            lo_cfg.storage_bits_estimate() <= hi_cfg.storage_bits_estimate(),
            "{family}: {} Kbit -> {} bits but {} Kbit -> {} bits",
            lo,
            lo_cfg.storage_bits_estimate(),
            hi,
            hi_cfg.storage_bits_estimate()
        );
    }

    /// Solved configurations behave like predictors: they build, answer
    /// the CBP protocol, and validate cleanly.
    #[test]
    fn solved_configs_build_and_predict(
        family_idx in 0usize..SWEEP_FAMILIES.len(),
        kbit_idx in 0usize..STANDARD_BUDGETS_KBIT.len(),
    ) {
        let family = SWEEP_FAMILIES[family_idx];
        let kbit = STANDARD_BUDGETS_KBIT[kbit_idx];
        let config = solve_budget(family, kbit * 1024).expect("standard ladder is solvable");
        prop_assert!(PredictorConfig::validate(&config).is_ok());
        let mut p = config.build();
        let _ = p.predict(0x4000);
        p.update(&imli_repro::trace::BranchRecord::conditional(0x4000, 0x4100, true));
        let _ = p.predict(0x4004);
        p.update(&imli_repro::trace::BranchRecord::conditional(0x4004, 0x3f00, false));
    }
}
