//! Cross-crate tests of the paper's §5 argument: local-history
//! components help, but much less once IMLI is present.

use imli_repro::sim::{make_predictor, simulate};
use imli_repro::trace::Trace;
use imli_repro::workloads::{find_benchmark, generate};

const BUDGET: u64 = 250_000;

fn mpki(config: &str, trace: &Trace) -> f64 {
    let mut p = make_predictor(config).expect("registered config");
    simulate(p.as_mut(), trace).mpki()
}

/// Benchmarks flavoured with local-periodic content (interleaved
/// per-branch periodic patterns) must benefit from the "+L"
/// configurations on both hosts.
#[test]
fn local_components_help_local_periodic_benchmarks() {
    // CLIENT-2 and INT01 carry the LocalPeriodic kernel in the suites.
    for bench in ["CLIENT-2", "INT01"] {
        let trace = generate(&find_benchmark(bench).expect("exists"), BUDGET);
        let tage = mpki("tage-gsc", &trace);
        let tage_l = mpki("tage-sc-l", &trace);
        assert!(
            tage_l < tage,
            "{bench}: TAGE-SC-L must beat TAGE-GSC ({tage:.3} -> {tage_l:.3})"
        );
        let gehl = mpki("gehl", &trace);
        let ftl = mpki("ftl", &trace);
        assert!(
            ftl < gehl * 1.02,
            "{bench}: FTL must not lose to GEHL ({gehl:.3} -> {ftl:.3})"
        );
    }
}

/// The §5 headline shape on the IMLI flagship benchmarks: adding local
/// history on top of IMLI buys less than adding it to the base
/// predictor (the components capture overlapping correlations).
#[test]
fn local_benefit_shrinks_once_imli_is_present() {
    let mut base_gain = 0.0;
    let mut imli_gain = 0.0;
    for bench in ["SPEC2K6-04", "WS04", "MM07", "WS03"] {
        let trace = generate(&find_benchmark(bench).expect("exists"), BUDGET);
        let b = mpki("tage-gsc", &trace);
        let l = mpki("tage-sc-l", &trace);
        let i = mpki("tage-gsc+imli", &trace);
        let il = mpki("tage-sc-l+imli", &trace);
        base_gain += b - l;
        imli_gain += i - il;
    }
    assert!(
        imli_gain < base_gain,
        "+L on top of +I ({imli_gain:.3}) must add less than +L alone ({base_gain:.3})"
    );
}

/// The §5 record shape: TAGE-SC-L+IMLI must be the best of the four
/// TAGE-family configurations on the IMLI-sensitive benchmarks, and
/// TAGE-GSC+IMLI must at least match TAGE-SC-L there despite ~20 Kbit
/// less storage.
#[test]
fn record_configuration_wins_on_imli_benchmarks() {
    let mut sums = [0.0f64; 4];
    for bench in ["SPEC2K6-04", "SPEC2K6-12", "WS04", "CLIENT02"] {
        let trace = generate(&find_benchmark(bench).expect("exists"), BUDGET);
        for (i, config) in ["tage-gsc", "tage-sc-l", "tage-gsc+imli", "tage-sc-l+imli"]
            .iter()
            .enumerate()
        {
            sums[i] += mpki(config, &trace);
        }
    }
    let [base, scl, imli, record] = sums;
    assert!(record < base && record < scl, "record must win: {sums:?}");
    assert!(
        imli < scl,
        "TAGE-GSC+IMLI ({imli:.3}) must beat TAGE-SC-L ({scl:.3}) on IMLI benchmarks"
    );
}
