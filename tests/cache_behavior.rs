//! Behavioral contract of the content-addressed result cache:
//!
//! * **Differential**: grid, report, and scenario outputs are
//!   bit-identical with the cache off, cold, and warm, across worker
//!   counts — over every registry configuration;
//! * **Key identity**: the cache key depends on config text, workload,
//!   and budgets only — never on worker count or predictor-list order
//!   — and separates every registry configuration and budget change;
//! * **Verify-then-trust**: truncated, bit-flipped, or wrong-key
//!   entries are silently recomputed (and repaired), never trusted and
//!   never fatal.

use imli_repro::cache::{CacheKey, CacheStore};
use imli_repro::components::PredictorConfig as _;
use imli_repro::sim::{
    grid_cell_key, registry, report_cell_key, run_report_with_cache, run_scenario_with_cache,
    scenario_by_name, scenario_cell_key, scenario_report_predictors, CachePolicy, Engine,
    GridStrategy, PredictorSpec, SimCache,
};
use imli_repro::workloads::{cbp4_suite, BenchmarkSpec};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

const INSTR: u64 = 10_000;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bp-cache-behavior-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn nuke(dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
}

fn benchmarks() -> Vec<BenchmarkSpec> {
    cbp4_suite().into_iter().take(2).collect()
}

/// Every `.json` entry file under the store, as sorted
/// store-relative paths — the cache's on-disk identity.
fn entry_files(root: &Path) -> BTreeSet<String> {
    let mut files = BTreeSet::new();
    let Ok(prefixes) = std::fs::read_dir(root) else {
        return files;
    };
    for prefix in prefixes.flatten() {
        let Ok(entries) = std::fs::read_dir(prefix.path()) else {
            continue;
        };
        for entry in entries.flatten() {
            files.insert(format!(
                "{}/{}",
                prefix.file_name().to_string_lossy(),
                entry.file_name().to_string_lossy()
            ));
        }
    }
    files
}

#[test]
fn grid_bit_identical_off_cold_warm_across_jobs_every_config() {
    let predictors = registry();
    let benchmarks = benchmarks();
    let dir = scratch("grid-diff");
    let baseline = Engine::with_jobs(1).run_grid(&predictors, &benchmarks, INSTR);
    let cold = SimCache::new(&dir, CachePolicy::ReadWrite);
    let cold_grid = Engine::with_jobs(8)
        .with_cache(Some(cold.clone()))
        .run_grid(&predictors, &benchmarks, INSTR);
    assert_eq!(baseline, cold_grid);
    assert_eq!(cold.hits(), 0);
    for jobs in [1, 8] {
        for strategy in [
            GridStrategy::Auto,
            GridStrategy::PerCell,
            GridStrategy::FusedColumns,
        ] {
            let warm = SimCache::new(&dir, CachePolicy::ReadWrite);
            let warm_grid = Engine::with_jobs(jobs)
                .with_strategy(strategy)
                .with_cache(Some(warm.clone()))
                .run_grid(&predictors, &benchmarks, INSTR);
            assert_eq!(baseline, warm_grid, "jobs={jobs} {strategy:?}");
            assert_eq!(
                warm.hits() as usize,
                predictors.len() * benchmarks.len(),
                "warm grid must not simulate (jobs={jobs} {strategy:?})"
            );
            assert_eq!(warm.stores(), 0);
        }
    }
    nuke(&dir);
}

#[test]
fn report_bytes_identical_off_cold_warm_across_jobs_every_config() {
    let predictors = registry();
    let benchmarks = benchmarks();
    let dir = scratch("report-diff");
    let warmup = INSTR / 5;
    let off = run_report_with_cache(
        "cbp4",
        &predictors,
        &benchmarks,
        INSTR,
        warmup,
        1,
        None,
        &|_| {},
    );
    let cold = SimCache::new(&dir, CachePolicy::ReadWrite);
    let cold_report = run_report_with_cache(
        "cbp4",
        &predictors,
        &benchmarks,
        INSTR,
        warmup,
        8,
        Some(&cold),
        &|_| {},
    );
    assert_eq!(off.to_json(), cold_report.to_json());
    assert_eq!(off.to_markdown(), cold_report.to_markdown());
    for jobs in [1, 8] {
        let warm = SimCache::new(&dir, CachePolicy::ReadWrite);
        let warm_report = run_report_with_cache(
            "cbp4",
            &predictors,
            &benchmarks,
            INSTR,
            warmup,
            jobs,
            Some(&warm),
            &|_| {},
        );
        assert_eq!(off.to_json(), warm_report.to_json(), "jobs={jobs}");
        assert_eq!(off.to_markdown(), warm_report.to_markdown(), "jobs={jobs}");
        assert_eq!(warm.hits() as usize, predictors.len() * benchmarks.len());
        assert_eq!(warm.stores(), 0);
    }
    nuke(&dir);
}

#[test]
fn scenario_bytes_identical_off_cold_warm_across_jobs() {
    let mut scenario = scenario_by_name("paper_mix").expect("built-in");
    scenario.instructions = 20_000;
    let predictors = scenario_report_predictors();
    let dir = scratch("scenario-diff");
    let off = run_scenario_with_cache(&scenario, &predictors, 1, None, &|_| {}).expect("runs");
    let cold = SimCache::new(&dir, CachePolicy::ReadWrite);
    let cold_report =
        run_scenario_with_cache(&scenario, &predictors, 8, Some(&cold), &|_| {}).expect("runs");
    assert_eq!(off.to_json(), cold_report.to_json());
    for jobs in [1, 8] {
        let warm = SimCache::new(&dir, CachePolicy::ReadWrite);
        let warm_report =
            run_scenario_with_cache(&scenario, &predictors, jobs, Some(&warm), &|_| {})
                .expect("runs");
        assert_eq!(off.to_json(), warm_report.to_json(), "jobs={jobs}");
        assert_eq!(off.to_markdown(), warm_report.to_markdown(), "jobs={jobs}");
        assert_eq!(warm.hits() as usize, predictors.len());
        assert_eq!(warm.stores(), 0);
    }
    nuke(&dir);
}

#[test]
fn cache_files_invariant_under_jobs_and_predictor_order() {
    let mut predictors: Vec<PredictorSpec> = registry().into_iter().take(4).collect();
    let benchmarks = benchmarks();
    let forward = scratch("order-fwd");
    let reversed = scratch("order-rev");
    Engine::with_jobs(1)
        .with_cache(Some(SimCache::new(&forward, CachePolicy::ReadWrite)))
        .run_grid(&predictors, &benchmarks, INSTR);
    predictors.reverse();
    Engine::with_jobs(8)
        .with_cache(Some(SimCache::new(&reversed, CachePolicy::ReadWrite)))
        .run_grid(&predictors, &benchmarks, INSTR);
    let files = entry_files(&forward);
    assert!(!files.is_empty());
    assert_eq!(
        files,
        entry_files(&reversed),
        "worker count and predictor order must not change the key set"
    );
    nuke(&forward);
    nuke(&reversed);
}

#[test]
fn keys_separate_every_registry_config_and_budget() {
    let predictors = registry();
    let mut hashes = BTreeSet::new();
    let mut config_texts = BTreeSet::new();
    for spec in &predictors {
        hashes.insert(grid_cell_key(spec, "bench", INSTR).hash_hex());
        config_texts.insert(spec.config.to_text());
    }
    // Keys are exactly as distinct as the canonical config texts: every
    // distinct configuration gets its own entry, and only identical
    // configurations (which compute identical results) share one.
    assert_eq!(hashes.len(), config_texts.len());

    let spec = &predictors[0];
    let base = report_cell_key(spec, "bench", INSTR, 100);
    for (label, other) in [
        ("workload", report_cell_key(spec, "other", INSTR, 100)),
        (
            "instructions",
            report_cell_key(spec, "bench", INSTR + 1, 100),
        ),
        ("warmup", report_cell_key(spec, "bench", INSTR, 101)),
        ("kind", grid_cell_key(spec, "bench", INSTR)),
    ] {
        assert_ne!(base.hash_hex(), other.hash_hex(), "{label} must re-key");
    }

    let scenario = scenario_by_name("paper_mix").expect("built-in");
    let mut other = scenario.clone();
    other.instructions += 1;
    assert_ne!(
        scenario_cell_key(spec, &scenario).hash_hex(),
        scenario_cell_key(spec, &other).hash_hex(),
        "scenario spec change must re-key"
    );
}

#[test]
fn corrupted_entries_are_recomputed_and_repaired_never_fatal() {
    let predictors: Vec<PredictorSpec> = registry().into_iter().take(4).collect();
    let benchmarks = benchmarks();
    let dir = scratch("corruption");
    let warmup = INSTR / 5;
    let baseline = run_report_with_cache(
        "cbp4",
        &predictors,
        &benchmarks,
        INSTR,
        warmup,
        2,
        None,
        &|_| {},
    );
    let cold = SimCache::new(&dir, CachePolicy::ReadWrite);
    run_report_with_cache(
        "cbp4",
        &predictors,
        &benchmarks,
        INSTR,
        warmup,
        2,
        Some(&cold),
        &|_| {},
    );
    let total = predictors.len() * benchmarks.len();
    assert_eq!(cold.stores() as usize, total);

    let store = CacheStore::new(&dir);
    let key_of =
        |p: usize, b: usize| report_cell_key(&predictors[p], &benchmarks[b].name, INSTR, warmup);
    // Truncate one entry, bit-flip a second, plant a third whose
    // envelope belongs to a different key (hash collision stand-in).
    let truncated = store.entry_path(&key_of(0, 0));
    let good = std::fs::read(&truncated).expect("entry exists");
    std::fs::write(&truncated, &good[..good.len() / 2]).expect("truncate");
    let flipped = store.entry_path(&key_of(1, 0));
    let mut bytes = std::fs::read(&flipped).expect("entry exists");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&flipped, &bytes).expect("flip");
    let planted = store.entry_path(&key_of(2, 1));
    let foreign = CacheKey {
        kind: "report".to_owned(),
        config: "not: this config\n".to_owned(),
        workload: benchmarks[1].name.clone(),
        instructions: INSTR,
        warmup,
    };
    std::fs::write(&planted, foreign.entry_text("{\"mpki\": 0}")).expect("plant");

    let warm = SimCache::new(&dir, CachePolicy::ReadWrite);
    let repaired = run_report_with_cache(
        "cbp4",
        &predictors,
        &benchmarks,
        INSTR,
        warmup,
        2,
        Some(&warm),
        &|_| {},
    );
    assert_eq!(baseline.to_json(), repaired.to_json());
    assert_eq!(warm.hits() as usize, total - 3, "3 corrupt entries miss");
    assert_eq!(warm.stores(), 3, "recomputed cells repair their entries");

    // The repair round overwrote the bad entries: now everything hits.
    let verify = SimCache::new(&dir, CachePolicy::ReadWrite);
    let verified = run_report_with_cache(
        "cbp4",
        &predictors,
        &benchmarks,
        INSTR,
        warmup,
        2,
        Some(&verify),
        &|_| {},
    );
    assert_eq!(baseline.to_json(), verified.to_json());
    assert_eq!(verify.hits() as usize, total);
    nuke(&dir);
}

#[test]
fn read_only_and_refresh_policies_behave() {
    let predictors: Vec<PredictorSpec> = registry().into_iter().take(2).collect();
    let benchmarks = benchmarks();
    let dir = scratch("policies");
    let total = predictors.len() * benchmarks.len();
    // ReadOnly over an empty store: all misses, nothing written.
    let ro = SimCache::new(&dir, CachePolicy::ReadOnly);
    let baseline =
        Engine::with_jobs(2)
            .with_cache(Some(ro.clone()))
            .run_grid(&predictors, &benchmarks, INSTR);
    assert_eq!(ro.misses() as usize, total);
    assert_eq!(ro.stores(), 0);
    assert!(entry_files(&dir).is_empty());
    // Refresh: ignores entries, rewrites them.
    let warm_up = SimCache::new(&dir, CachePolicy::ReadWrite);
    Engine::with_jobs(2)
        .with_cache(Some(warm_up.clone()))
        .run_grid(&predictors, &benchmarks, INSTR);
    let refresh = SimCache::new(&dir, CachePolicy::Refresh);
    let refreshed = Engine::with_jobs(2)
        .with_cache(Some(refresh.clone()))
        .run_grid(&predictors, &benchmarks, INSTR);
    assert_eq!(baseline, refreshed);
    assert_eq!(refresh.hits(), 0, "refresh never reads");
    assert_eq!(refresh.stores() as usize, total);
    nuke(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The canonical key text round-trips every budget combination into
    /// a distinct hash: any change to instructions or warmup re-keys.
    #[test]
    fn prop_budget_changes_rekey(instr in 1u64..1_000_000, warmup in 0u64..1_000_000, delta in 1u64..1_000) {
        let spec = registry().remove(0);
        let base = report_cell_key(&spec, "bench", instr, warmup);
        prop_assert!(
            base.hash_hex() != report_cell_key(&spec, "bench", instr + delta, warmup).hash_hex()
        );
        prop_assert!(
            base.hash_hex() != report_cell_key(&spec, "bench", instr, warmup + delta).hash_hex()
        );
    }

    /// Arbitrary single-byte corruption anywhere in an entry is either
    /// survivable (payload still decodes to the same bytes) or a silent
    /// miss — never a panic, never a wrong result.
    #[test]
    fn prop_byte_corruption_never_trusted_or_fatal(pos_frac in 0.0f64..1.0, flip in 1u8..=255) {
        let spec = registry().remove(0);
        let dir = scratch(&format!("prop-corrupt-{pos_frac:.6}-{flip}"));
        let store = CacheStore::new(&dir);
        let key = grid_cell_key(&spec, "bench", INSTR);
        let payload = "{\n  \"benchmark\": \"bench\"\n}";
        store.save(&key, payload).expect("save");
        let path = store.entry_path(&key);
        let mut bytes = std::fs::read(&path).expect("read");
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= flip;
        let changed = std::fs::write(&path, &bytes).is_ok();
        let loaded = store.load(&key);
        if let Some(text) = loaded {
            // Only an envelope that still verifies byte-for-byte may
            // surface its payload (the flip landed in the payload, which
            // the strict decoder upstream re-checks).
            prop_assert!(changed);
            prop_assert!(key.entry_text(&text) == String::from_utf8(bytes).unwrap_or_default());
        }
        nuke(&dir);
    }
}
