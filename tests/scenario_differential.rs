//! Differential gate for the scenario layer: a single-tenant
//! "interleave of one" scenario must be **bit-identical** to plain
//! stream simulation for every registered predictor configuration.
//!
//! The combinator path adds machinery — event wrapping, tenant
//! rebasing, block-wise fused replay, per-tenant tallies — and every
//! piece must vanish in the degenerate case: one tenant, offset zero,
//! no flushes. Any divergence (a dropped record, a rebased PC, a
//! double-counted tally, an attribution drift) fails here for the
//! exact configuration that diverged.

use imli_repro::sim::{
    registry, simulate_scenario, simulate_scenario_multi, simulate_stream,
    simulate_stream_attributed,
};
use imli_repro::trace::BranchStream;
use imli_repro::workloads::{find_benchmark, interleave, InterleaveSchedule, SingleTenant};

const INSTRUCTIONS: u64 = 25_000;
const BENCH: &str = "SPEC2K6-04";

/// Every registry configuration, through the real `interleave`
/// combinator with one tenant: identical counts, MPKI, and attribution
/// to `simulate_stream` / `simulate_stream_attributed` on the raw
/// benchmark stream.
#[test]
fn interleave_of_one_is_plain_simulation_for_every_config() {
    let bench = find_benchmark(BENCH).expect("paper benchmark");
    for spec in registry() {
        // Reference: the plain attributed run (predictions are
        // guaranteed identical to `simulate_stream`); warmup 0 puts the
        // whole run in the steady phase.
        let attributed =
            simulate_stream_attributed(spec.make().as_mut(), bench.stream(INSTRUCTIONS), 0);
        let plain = simulate_stream(spec.make().as_mut(), bench.stream(INSTRUCTIONS));
        assert_eq!(attributed.result.stats, plain.stats, "{}", spec.name);

        // Candidate: the same stream through the interleave combinator
        // as its only tenant (tenant 0 is never PC-rebased).
        let stream: Box<dyn BranchStream + Send> = Box::new(bench.stream(INSTRUCTIONS));
        let mut events = interleave(vec![stream], InterleaveSchedule::RoundRobin { quantum: 7 });
        let run = simulate_scenario(&spec, &mut events);

        assert_eq!(
            run.stats, plain.stats,
            "{}: prediction counts diverged",
            spec.name
        );
        assert_eq!(run.instructions, plain.instructions, "{}", spec.name);
        assert_eq!(run.records, plain.records, "{}", spec.name);
        assert!(
            (run.mpki() - plain.mpki()).abs() < 1e-12,
            "{}: MPKI diverged ({} vs {})",
            spec.name,
            run.mpki(),
            plain.mpki()
        );
        assert_eq!(run.flushes, 0, "{}", spec.name);
        assert_eq!(run.tenants.len(), 1, "{}", spec.name);
        assert_eq!(run.tenants[0].stats, plain.stats, "{}", spec.name);
        assert_eq!(
            run.tenants[0].attribution, attributed.steady.attribution,
            "{}: per-tenant attribution diverged from the plain attributed run",
            spec.name
        );
    }
}

/// The same differential through the `SingleTenant` adapter (the
/// no-combinator wrapping of a raw stream) and through the fused
/// multi-predictor path: all three entry points agree.
#[test]
fn single_tenant_adapter_and_fused_path_agree_with_plain_simulation() {
    let bench = find_benchmark(BENCH).expect("paper benchmark");
    let specs: Vec<_> = registry().into_iter().take(6).collect();
    let mut events = SingleTenant::new(bench.stream(INSTRUCTIONS));
    let fused = simulate_scenario_multi(&specs, &mut events);
    assert_eq!(fused.len(), specs.len());
    for (spec, run) in specs.iter().zip(&fused) {
        let plain = simulate_stream(spec.make().as_mut(), bench.stream(INSTRUCTIONS));
        assert_eq!(
            run.stats, plain.stats,
            "{}: fused scenario diverged",
            spec.name
        );
        assert_eq!(run.records, plain.records, "{}", spec.name);
        assert_eq!(run.instructions, plain.instructions, "{}", spec.name);
    }
}
