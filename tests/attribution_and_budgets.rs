//! Integration tests for the instrumentation + reporting subsystem:
//! exact storage accounting against hand-computed values for the
//! paper's canonical configurations, and the guarantee that the
//! attribution channel never changes predictions.

use imli_repro::components::{
    Bimodal, ConditionalPredictor, GShare, ProviderComponent, StorageBudget,
};
use imli_repro::gehl::Gehl;
use imli_repro::perceptron::HashedPerceptron;
use imli_repro::sim::{registry, run_report, simulate_stream, simulate_stream_attributed};
use imli_repro::tage::TageSc;
use imli_repro::trace::{BranchRecord, Trace};
use imli_repro::workloads::{find_benchmark, paper_suite, quick_benchmark};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Storage accounting: hand-computed bit costs for canonical configs.
// ---------------------------------------------------------------------

#[test]
fn bimodal_storage_is_two_bits_per_entry() {
    let p = Bimodal::new(16384);
    assert_eq!(p.storage_bits(), 16384 * 2);
    let items = p.storage_items();
    assert_eq!(items.len(), 1);
    assert_eq!(items[0].bits, 32768);
}

#[test]
fn gshare_storage_is_table_plus_history() {
    // The registry baseline: 2^14 2-bit counters + 12 history bits.
    let p = GShare::new(14, 12);
    assert_eq!(p.storage_bits(), (1 << 14) * 2 + 12);
    let items = p.storage_items();
    assert_eq!(items.len(), 2);
    assert_eq!(items[0].bits, 32768);
    assert_eq!(items[1].bits, 12);
}

#[test]
fn gehl_204_kbit_is_seventeen_identical_tables() {
    // Paper §3.2.2: 17 tables × 2K entries × 6-bit counters = 204 Kbit
    // exactly, nothing else.
    let p = Gehl::gehl();
    let items = p.storage_items();
    assert_eq!(items.len(), 17);
    for item in &items {
        assert_eq!(item.bits, 2048 * 6, "{}", item.label);
    }
    assert_eq!(p.storage_bits(), 204 * 1024);
}

#[test]
fn perceptron_base_is_eight_weight_tables() {
    let p = HashedPerceptron::base();
    let items = p.storage_items();
    assert_eq!(items.len(), 8);
    for item in &items {
        assert_eq!(item.bits, 2048 * 6, "{}", item.label);
    }
    assert_eq!(p.storage_bits(), 8 * 2048 * 6);
}

#[test]
fn tage_gsc_storage_matches_hand_computation() {
    // TAGE part: 8K-entry shared-hysteresis base (8192 direction +
    // 2048 hysteresis bits), 12 tagged banks of 1K entries at
    // (3 ctr + 2 useful + tag) bits with tags 8,8,9,10,10,11,11,12,12,
    // 13,14,15, plus the 4-bit use_alt_on_na register.
    let tags: [u64; 12] = [8, 8, 9, 10, 10, 11, 11, 12, 12, 13, 14, 15];
    let tagged: u64 = tags.iter().map(|t| 1024 * (3 + 2 + t)).sum();
    let tage = 8192 + 2048 + tagged + 4;
    // SC part (GSC): two 512-entry 6-bit bias tables, four 512-entry
    // 6-bit global tables, and the adaptive threshold (8-bit θ for
    // θ_max = 255, plus the 8-bit adaptation counter).
    let sc = 2 * 512 * 6 + 4 * 512 * 6 + (8 + 8);
    let p = TageSc::tage_gsc();
    assert_eq!(p.storage_bits(), tage + sc);
    // The itemization carries exactly the same total and the per-bank
    // arithmetic.
    let items = p.storage_items();
    assert_eq!(items.iter().map(|i| i.bits).sum::<u64>(), p.storage_bits());
    for (i, tag) in tags.iter().enumerate() {
        let item = items
            .iter()
            .find(|it| it.label == format!("tage/tagged[{i}]"))
            .expect("tagged bank itemized");
        assert_eq!(item.bits, 1024 * (5 + tag));
    }
}

#[test]
fn imli_addition_costs_what_the_paper_says() {
    // Paper §4.4: SIC table 384 B, OH prediction table 192 B, outer
    // history 128 B, PIPE + counter ≈ 4 B. Our packaging: 3072 + 1536
    // + (1024 + 16) + 10 bits.
    let base = TageSc::tage_gsc().storage_bits();
    let with_imli = TageSc::tage_gsc_imli().storage_bits();
    assert_eq!(with_imli - base, 10 + 3072 + 1536 + 1024 + 16);
}

#[test]
fn every_registry_predictor_itemizes_consistently() {
    for spec in registry() {
        let p = spec.make();
        let items = p.storage_items();
        assert!(!items.is_empty(), "{} itemizes nothing", spec.name);
        assert_eq!(
            items.iter().map(|i| i.bits).sum::<u64>(),
            p.storage_bits(),
            "{}: itemization does not sum to the total",
            spec.name
        );
        assert_eq!(spec.storage_bits(), p.storage_bits());
    }
}

// ---------------------------------------------------------------------
// Attribution: the instrumented path never changes predictions.
// ---------------------------------------------------------------------

#[test]
fn attributed_simulation_is_bit_identical_for_every_registry_predictor() {
    let bench = find_benchmark("SPEC2K6-04").expect("registered");
    for spec in registry() {
        let plain = simulate_stream(spec.make().as_mut(), bench.stream(40_000));
        let attributed =
            simulate_stream_attributed(spec.make().as_mut(), bench.stream(40_000), 10_000);
        assert_eq!(plain, attributed.result, "{} diverged", spec.name);
    }
}

#[test]
fn attribution_components_match_the_predictor_architecture() {
    let trace = quick_benchmark("attr", 0xA11, 60_000);
    // TAGE host: tagged banks + base (+ corrector); never neural.
    let mut tage = TageSc::tage_gsc_imli();
    let run = simulate_stream_attributed(&mut tage, trace.stream(), 10_000);
    assert!(run.steady.attribution.get("tagged").is_some());
    assert!(run.steady.attribution.get("neural").is_none());
    // GEHL host: neural (+ loop for FTL); never tagged.
    let mut gehl = Gehl::gehl_imli();
    let run = simulate_stream_attributed(&mut gehl, trace.stream(), 10_000);
    assert!(run.steady.attribution.get("neural").is_some());
    assert!(run.steady.attribution.get("tagged").is_none());
}

/// Drives two fresh instances of the same predictor over the same
/// records, one through `predict`, one through `predict_attributed`,
/// asserting identical predictions at every step.
fn assert_paths_identical(
    make: &dyn Fn() -> Box<dyn ConditionalPredictor + Send>,
    records: &[BranchRecord],
) {
    let mut plain = make();
    let mut attributed = make();
    for (i, record) in records.iter().enumerate() {
        if record.is_conditional() {
            let p = plain.predict(record.pc);
            let (a, attr) = attributed.predict_attributed(record.pc);
            assert_eq!(p, a, "prediction diverged at record {i}");
            // A reported alternate must describe the losing path: when
            // it agrees with the prediction there was no disagreement
            // to arbitrate, which is legal, but the component must not
            // be Unattributed while claiming an alternate.
            if attr.alternate.is_some() {
                assert_ne!(attr.component, ProviderComponent::Unattributed);
            }
            plain.update(record);
            attributed.update(record);
        } else {
            plain.notify_nonconditional(record);
            attributed.notify_nonconditional(record);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Attribution-on and attribution-off runs produce identical
    /// predictions over arbitrary branch streams, for one host of each
    /// architecture family (TAGE+SC+loop, GEHL adder-tree, perceptron,
    /// wormhole wrapper, baseline).
    #[test]
    fn attribution_never_changes_predictions(
        steps in proptest::collection::vec((0u64..24, any::<bool>(), any::<bool>()), 1..300)
    ) {
        let records: Vec<BranchRecord> = steps
            .iter()
            .map(|&(slot, taken, backward)| {
                let pc = 0x4000 + slot * 4;
                let target = if backward { pc - 0x200 } else { pc + 0x200 };
                BranchRecord::conditional(pc, target, taken).with_leading_instructions(3)
            })
            .collect();
        for name in ["tage-sc-l+imli", "gehl+imli", "perceptron+imli", "gehl+wh", "bimodal"] {
            let factory = move || {
                imli_repro::sim::make_predictor(name).expect("registered")
            };
            assert_paths_identical(&factory, &records);
        }
    }
}

// ---------------------------------------------------------------------
// Report layer.
// ---------------------------------------------------------------------

#[test]
fn paper_report_is_deterministic_across_runs_and_worker_counts() {
    let predictors: Vec<_> = ["tage-gsc+imli", "gehl+wh"]
        .iter()
        .map(|n| imli_repro::sim::lookup(n).expect("registered"))
        .collect();
    let benchmarks: Vec<_> = paper_suite().into_iter().take(3).collect();
    let run = |jobs| {
        run_report(
            "paper",
            &predictors,
            &benchmarks,
            30_000,
            6_000,
            jobs,
            &|_| {},
        )
    };
    let a = run(1);
    let b = run(4);
    assert_eq!(a, b);
    assert_eq!(a.to_markdown(), b.to_markdown());
    assert_eq!(a.to_json(), b.to_json());
    // The report carries the acceptance-relevant content: per-predictor
    // MPKI per benchmark, storage bits, and attribution.
    for row in &a.rows {
        assert_eq!(row.mpki.len(), benchmarks.len());
        assert!(row.storage_bits > 0);
        assert!(row.steady.attribution.total_provided() > 0);
    }
}

#[test]
fn warmup_split_respects_the_boundary() {
    let mut t = Trace::new("split");
    for i in 0..1000u64 {
        t.push(BranchRecord::conditional(0x40, 0x20, i % 3 == 0).with_leading_instructions(9));
    }
    let mut p = Bimodal::new(64);
    let run = simulate_stream_attributed(&mut p, t.stream(), 4_000);
    assert_eq!(run.warmup.instructions, 4_000);
    assert_eq!(run.steady.instructions, 6_000);
    assert_eq!(run.warmup.stats.predicted, 400);
    assert_eq!(run.steady.stats.predicted, 600);
    assert!(run.steady.mpki() > 0.0);
}
