//! Hot-branch inspector: the paper's "a small number of hard-to-predict
//! branches dominate" observation, before and after IMLI.
//!
//! Profiles the flagship diagonal benchmark (SPEC2K6-12) per static
//! branch and shows the planted loop-nest branch moving from the top of
//! the misprediction ranking to irrelevance once IMLI-OH is enabled.
//!
//! ```sh
//! cargo run --release --example hot_branches
//! ```

use imli_repro::sim::{make_predictor, MispredictionProfile, TextTable};
use imli_repro::workloads::{find_benchmark, generate};

fn profile(config: &str, trace: &imli_repro::trace::Trace) -> MispredictionProfile {
    let mut p = make_predictor(config).expect("registered");
    MispredictionProfile::collect(p.as_mut(), trace)
}

fn show(label: &str, profile: &MispredictionProfile) {
    println!(
        "{label}: {:.3} MPKI, top-3 branches cause {:.0} % of mispredictions",
        profile.mpki(),
        profile.concentration(3) * 100.0
    );
    let mut table = TextTable::new(vec!["pc", "occurrences", "mispredicted", "rate"]);
    for b in profile.top(5) {
        table.row(vec![
            format!("{:#x}{}", b.pc, if b.backward { " (bwd)" } else { "" }),
            b.occurrences.to_string(),
            b.mispredictions.to_string(),
            format!("{:.1} %", b.misprediction_rate() * 100.0),
        ]);
    }
    println!("{table}");
}

fn main() {
    let spec = find_benchmark("SPEC2K6-12").expect("flagship benchmark");
    let trace = generate(&spec, 600_000);
    println!("{trace}\n");

    let base = profile("tage-gsc", &trace);
    let imli = profile("tage-gsc+imli", &trace);
    show("TAGE-GSC", &base);
    show("TAGE-GSC+IMLI", &imli);

    let worst_base = base.top(1)[0];
    let fixed = imli
        .all()
        .iter()
        .find(|b| b.pc == worst_base.pc)
        .expect("same static branches");
    println!(
        "hardest base branch {:#x}: {:.1} % -> {:.1} % misprediction rate under IMLI",
        worst_base.pc,
        worst_base.misprediction_rate() * 100.0,
        fixed.misprediction_rate() * 100.0
    );
}
