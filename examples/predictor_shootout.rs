//! Shootout: every registered predictor configuration over a slice of
//! the CBP4-like suite, ranked by mean MPKI, with storage budgets.
//!
//! ```sh
//! cargo run --release --example predictor_shootout
//! ```

use imli_repro::sim::{registry, run_suite, TextTable};
use imli_repro::workloads::cbp4_suite;

fn main() {
    // A representative slice: the two flagship planted benchmarks plus
    // four generic ones. (The full 2×40-benchmark runs live in the
    // exp_* binaries of the bp-bench crate.)
    let suite: Vec<_> = cbp4_suite()
        .into_iter()
        .filter(|s| {
            [
                "SPEC2K6-04",
                "SPEC2K6-12",
                "MM-4",
                "SPEC2K6-01",
                "SERVER-3",
                "CLIENT-2",
            ]
            .contains(&s.name.as_str())
        })
        .collect();

    let mut rows: Vec<(String, f64, u64)> = Vec::new();
    for spec in registry() {
        let result = run_suite(&|| spec.make(), &suite, 400_000);
        rows.push((
            spec.name.to_owned(),
            result.mean_mpki(),
            spec.storage_bits(),
        ));
    }
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));

    let mut table = TextTable::new(vec!["rank", "config", "mean MPKI", "Kbit"]);
    for (i, (name, mpki, bits)) in rows.iter().enumerate() {
        table.row(vec![
            (i + 1).to_string(),
            name.clone(),
            format!("{mpki:.3}"),
            format!("{:.0}", *bits as f64 / 1024.0),
        ]);
    }
    println!("{table}");
}
