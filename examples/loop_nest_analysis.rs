//! Loop-nest analysis: reproduce the paper's Figure 1 taxonomy on a
//! hand-built two-dimensional loop nest and watch which component
//! captures which branch.
//!
//! The trace interleaves four body branches inside one inner loop:
//!   B1: diagonal     — Out[N][M] = Out[N-1][M-1]   (WH / IMLI-OH)
//!   B2: same-iter    — Out[N][M] ≈ Out[N-1][M]     (IMLI-SIC)
//!   B3: inverted     — Out[N][M] = ¬Out[N-1][M]    (IMLI-OH)
//!   B4: nested       — same-iter under a guard     (IMLI-SIC, not WH)
//!
//! ```sh
//! cargo run --release --example loop_nest_analysis
//! ```

use imli_repro::sim::{make_predictor, simulate, TextTable};
use imli_repro::trace::{BranchRecord, Trace};

const TRIP: usize = 24;
const OUTERS: usize = 3_000;

fn build_nest() -> Trace {
    let mut trace = Trace::new("figure-1-nest");
    let mut pattern: Vec<bool> = (0..TRIP + OUTERS + 2).map(|i| (i * 13) % 5 < 2).collect();
    let mut inverted: Vec<bool> = (0..TRIP).map(|i| (i * 7) % 3 == 0).collect();
    let same: Vec<bool> = (0..TRIP).map(|i| (i * 11) % 4 != 0).collect();
    for n in 0..OUTERS {
        for m in 0..TRIP {
            // B1 at 0x1000: diagonal (pattern shifted by one per outer).
            let b1 = pattern[m + (OUTERS - n)];
            trace.push(BranchRecord::conditional(0x1000, 0x1040, b1).with_leading_instructions(6));
            // B2 at 0x1008: stable per-iteration pattern.
            trace.push(
                BranchRecord::conditional(0x1008, 0x1048, same[m]).with_leading_instructions(4),
            );
            // B3 at 0x1010: inverts every outer iteration.
            trace.push(
                BranchRecord::conditional(0x1010, 0x1050, inverted[m]).with_leading_instructions(4),
            );
            // B4 at 0x1018/0x1020: nested under a deterministic guard.
            let guard = (m * 7 + 3) % 10 < 6;
            trace.push(
                BranchRecord::conditional(0x1018, 0x1058, guard).with_leading_instructions(3),
            );
            if guard {
                trace.push(
                    BranchRecord::conditional(0x1020, 0x1060, same[(m + 5) % TRIP])
                        .with_leading_instructions(2),
                );
            }
            // Inner loop backward branch at 0x1030.
            trace.push(
                BranchRecord::conditional(0x1030, 0x1000, m + 1 < TRIP)
                    .with_leading_instructions(3),
            );
        }
        for slot in inverted.iter_mut() {
            *slot = !*slot;
        }
        let _ = &mut pattern; // the diagonal shift is realized via the index
    }
    trace
}

fn main() {
    let trace = build_nest();
    println!("{trace}\n");
    let mut table = TextTable::new(vec!["predictor", "MPKI", "vs TAGE-GSC"]);
    let mut base_mpki = None;
    for config in [
        "tage-gsc",
        "tage-gsc+sic",
        "tage-gsc+oh",
        "tage-gsc+imli",
        "tage-gsc+wh",
    ] {
        let mut p = make_predictor(config).expect("registered");
        let result = simulate(p.as_mut(), &trace);
        let mpki = result.mpki();
        let base = *base_mpki.get_or_insert(mpki);
        table.row(vec![
            result.predictor,
            format!("{mpki:.3}"),
            format!("{:+.1} %", (mpki - base) / base * 100.0),
        ]);
    }
    println!("{table}");
    println!("expected: SIC fixes B2/B4, OH also fixes B1/B3, WH fixes B1 only;");
    println!("the full IMLI configuration approaches the sum of both components.");
}
