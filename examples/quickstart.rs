//! Quickstart: predict a synthetic benchmark with TAGE-GSC+IMLI.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use imli_repro::components::StorageBudget;
use imli_repro::sim::simulate;
use imli_repro::tage::TageSc;
use imli_repro::workloads::quick_benchmark;

fn main() {
    // A deterministic synthetic benchmark: biased branches, a 2-D loop
    // nest with same-iteration correlation, and some irregular noise.
    let trace = quick_benchmark("quickstart", 0xC0FFEE, 500_000);
    println!("{trace}");

    // The paper's base predictor and its IMLI-augmented version.
    let mut base = TageSc::tage_gsc();
    let mut with_imli = TageSc::tage_gsc_imli();

    let base_result = simulate(&mut base, &trace);
    let imli_result = simulate(&mut with_imli, &trace);

    println!(
        "{:<14} {:>8.3} MPKI  ({:>6.1} Kbit)",
        base_result.predictor,
        base_result.mpki(),
        base.storage_bits() as f64 / 1024.0
    );
    println!(
        "{:<14} {:>8.3} MPKI  ({:>6.1} Kbit)",
        imli_result.predictor,
        imli_result.mpki(),
        with_imli.storage_bits() as f64 / 1024.0
    );
    println!(
        "IMLI reduced mispredictions by {:.1} % for {:.0} extra bytes of state",
        (base_result.mpki() - imli_result.mpki()) / base_result.mpki() * 100.0,
        (with_imli.storage_bits() - base.storage_bits()) as f64 / 8.0
    );
}
