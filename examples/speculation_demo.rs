//! Speculation demo: the paper's 26-bit checkpoint in action.
//!
//! Runs a benchmark through the IMLI state while a simulated fetch
//! engine keeps mispredicting and running down wrong paths, repairing
//! with [`imli::ImliState::restore`]. Also shows the §4.3.2 delayed
//! outer-history update being harmless.
//!
//! ```sh
//! cargo run --release --example speculation_demo
//! ```

use imli_repro::imli::ImliConfig;
use imli_repro::sim::{make_predictor, simulate, speculative_imli_fidelity};
use imli_repro::tage::{TageSc, TageScConfig};
use imli_repro::workloads::{find_benchmark, generate};

fn main() {
    let spec = find_benchmark("SPEC2K6-12").expect("flagship benchmark");
    let trace = generate(&spec, 400_000);

    // 1. Checkpoint/restore fidelity under aggressive speculation.
    let report = speculative_imli_fidelity(&trace, &ImliConfig::default(), 19, 64);
    println!("speculation: {report}");
    assert_eq!(report.divergences, 0);
    println!("=> the 26-bit checkpoint repairs every excursion exactly\n");

    // 2. Delayed commit of the outer-history table (§4.3.2).
    let mut immediate = make_predictor("tage-gsc+imli").expect("registered");
    let immediate_mpki = simulate(immediate.as_mut(), &trace).mpki();
    let mut delayed = TageSc::new(
        TageScConfig::gsc_imli().with_imli(ImliConfig::delayed_update(63), "TAGE-GSC+IMLI(d63)"),
    );
    let delayed_mpki = simulate(&mut delayed, &trace).mpki();
    println!("immediate OH update: {immediate_mpki:.3} MPKI");
    println!("63-branch delayed:   {delayed_mpki:.3} MPKI");
    println!(
        "=> delta {:+.3} MPKI (paper: ~0.002), versus a base MPKI of {:.3}",
        delayed_mpki - immediate_mpki,
        {
            let mut base = make_predictor("tage-gsc").expect("registered");
            simulate(base.as_mut(), &trace).mpki()
        }
    );
}
